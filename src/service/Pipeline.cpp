//===- service/Pipeline.cpp - Staged compilation sessions -----------------===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
// Owns the stage implementations that used to live in driver/Driver.cpp;
// the free functions there are now shims over this class.
//
//===----------------------------------------------------------------------===//

#include "service/Pipeline.h"

#include "observe/PassStats.h"
#include "observe/Trace.h"
#include "service/Hash.h"
#include "service/Version.h"
#include "support/Budget.h"

#include <new>
#include <optional>

using namespace pluto;

//===----------------------------------------------------------------------===//
// Budget enforcement
//===----------------------------------------------------------------------===//

// Budgeted hot loops bail out fast when the active budget trips, leaving
// their artifact garbage; the stage accessors call this at every stage
// boundary to detect the sticky flag (re-checking the wall clock, so even
// a stage that charges little work cannot overrun a deadline by more than
// one stage) and turn the garbage into a classified error before the next
// stage consumes it.
static bool budgetTripped() {
  Budget *B = activeBudget();
  if (!B)
    return false;
  B->checkWall();
  return B->exhausted();
}

static std::string budgetMessage() {
  Budget *B = activeBudget();
  const char *Why = B && B->reason() ? B->reason() : "resource";
  return std::string("resource budget exhausted (") + Why + " limit)";
}

//===----------------------------------------------------------------------===//
// Lowering helpers (pragma placement, loop classification)
//===----------------------------------------------------------------------===//

/// Chooses the pragma row inside one run of schedule rows [Start, End):
/// the outermost parallel loop row, preferring one that is not the
/// vectorized row when possible. Returns -1 when the run has none.
static int pickPragmaRow(const Scop &Sc, unsigned Start, unsigned End) {
  int First = -1, FirstNonVector = -1;
  for (unsigned Row = Start; Row < End; ++Row) {
    if (Sc.Rows[Row].IsScalar || !Sc.Rows[Row].IsParallel)
      continue;
    if (First < 0)
      First = static_cast<int>(Row);
    if (FirstNonVector < 0 && !Sc.Rows[Row].IsVector)
      FirstNonVector = static_cast<int>(Row);
  }
  return FirstNonVector >= 0 ? FirstNonVector : First;
}

/// Parallel pragma placement: one pragma row per permutable band (plus any
/// band-less row runs a forced schedule may carry), not one globally. With
/// multiple bands - every post-SCC-cut or tiled schedule - a single global
/// pick would leave later bands' parallel loops without a pragma in the
/// subtrees where the picked row is equality-determined (a Let, not a
/// loop). Nested picks are legal: codegen keeps only the outermost pragma
/// on each root-to-leaf path (dropNestedParallelPragmas).
static void pickParallelPragmaRows(const Scop &Sc, CodeGenOptions &CG) {
  std::vector<bool> Covered(Sc.numRows(), false);
  for (const Schedule::Band &B : Sc.bands()) {
    for (unsigned Row = B.Start; Row < B.Start + B.Width; ++Row)
      Covered[Row] = true;
    int Pick = pickPragmaRow(Sc, B.Start, B.Start + B.Width);
    if (Pick >= 0)
      CG.ParallelPragmaRows.insert(static_cast<unsigned>(Pick));
  }
  // Rows outside every band (forced schedules with no band metadata):
  // treat each maximal run of uncovered non-scalar rows as a band.
  for (unsigned Row = 0; Row < Sc.numRows(); ++Row) {
    if (Covered[Row] || Sc.Rows[Row].IsScalar)
      continue;
    unsigned End = Row;
    while (End < Sc.numRows() && !Covered[End] && !Sc.Rows[End].IsScalar)
      ++End;
    int Pick = pickPragmaRow(Sc, Row, End);
    if (Pick >= 0)
      CG.ParallelPragmaRows.insert(static_cast<unsigned>(Pick));
    Row = End;
  }
}

/// Final per-row loop classification for the report: parallel rows are
/// communication-free parallel loops; a sequential row sharing a band with
/// a parallel row is the pipelined (wavefront) direction; everything else
/// is sequential. Scalar rows are not loops.
static void classifyLoops(const Scop &Sc) {
  Trace *T = activeTrace();
  if (!activeStats() && !T)
    return;
  std::vector<bool> InParallelBand(Sc.numRows(), false);
  for (const Schedule::Band &B : Sc.bands()) {
    bool AnyParallel = false;
    for (unsigned Row = B.Start; Row < B.Start + B.Width; ++Row)
      AnyParallel |= Sc.Rows[Row].IsParallel;
    for (unsigned Row = B.Start; Row < B.Start + B.Width; ++Row)
      InParallelBand[Row] = AnyParallel;
  }
  for (unsigned Row = 0; Row < Sc.numRows(); ++Row) {
    if (Sc.Rows[Row].IsScalar)
      continue;
    const char *Class;
    if (Sc.Rows[Row].IsParallel) {
      count(Counter::LoopsParallel);
      if (!Sc.Rows[Row].Reductions.empty()) {
        count(Counter::ReductionParallelLoops);
        Class = "parallel (reduction)";
      } else {
        Class = "parallel";
      }
    } else if (InParallelBand[Row]) {
      count(Counter::LoopsPipeline);
      Class = "pipeline";
    } else {
      count(Counter::LoopsSequential);
      Class = "sequential";
    }
    if (T)
      T->record("driver", "row " + std::to_string(Row) + ": " + Class +
                              (Sc.Rows[Row].IsVector ? " (vectorized)" : ""));
  }
}

//===----------------------------------------------------------------------===//
// Pipeline
//===----------------------------------------------------------------------===//

Pipeline::Pipeline(PlutoOptions O)
    : Opts(std::move(O)), Fp(Opts.fingerprint()) {}

Result<Pipeline> Pipeline::create(PlutoOptions Opts) {
  if (auto V = Opts.validate(); !V)
    return Err(V.error());
  return Pipeline(std::move(Opts));
}

void Pipeline::setSource(std::string Source) {
  Src = std::move(Source);
  FailStatus = StatusCode::Internal;
  SrcDiags.clear();
  ParsedArt.reset();
  DepsArt.reset();
  SchedArt.reset();
  LoweredArt.reset();
  EmittedArt.reset();
}

Result<const ParsedProgram *> Pipeline::parsed() {
  if (ParsedArt) {
    count(Counter::StageReuses);
    return static_cast<const ParsedProgram *>(&*ParsedArt);
  }
  ScopedPassTimer Timer(Pass::Parse);
  ParseResult P = parseSourceDiags(Src);
  SrcDiags = P.Diags;
  count(Counter::ParserErrors, errorCount(SrcDiags));
  if (budgetTripped()) {
    // The parser stopped early; neither the partial program nor its
    // diagnostics describe the whole input, so classify as exhaustion,
    // not source-error.
    FailStatus = StatusCode::ResourceExhausted;
    return Err(budgetMessage());
  }
  if (!P.Program) {
    FailStatus = StatusCode::SourceError;
    return Err(joinDiagnostics(SrcDiags));
  }
  for (const std::string &Pm : P.Program->Prog.ParamNames)
    P.Program->Prog.addContextBound(Pm, Opts.ParamMin);
  ParsedArt = std::move(*P.Program);
  return static_cast<const ParsedProgram *>(&*ParsedArt);
}

Result<const DependenceGraph *> Pipeline::dependences() {
  if (DepsArt) {
    count(Counter::StageReuses);
    return static_cast<const DependenceGraph *>(&*DepsArt);
  }
  auto P = parsed();
  if (!P)
    return Err(P.error());
  DepOptions DO;
  DO.IncludeInputDeps = Opts.IncludeInputDeps;
  ScopedPassTimer Timer(Pass::Deps);
  DepsArt = computeDependences((*P)->Prog, DO);
  if (budgetTripped()) {
    DepsArt.reset();
    FailStatus = StatusCode::ResourceExhausted;
    return Err(budgetMessage());
  }
  return static_cast<const DependenceGraph *>(&*DepsArt);
}

Result<const Schedule *> Pipeline::scheduled() {
  if (SchedArt) {
    count(Counter::StageReuses);
    return static_cast<const Schedule *>(&*SchedArt);
  }
  auto D = dependences();
  if (!D)
    return Err(D.error());
  ScopedPassTimer Timer(Pass::Schedule);
  TransformOptions TO;
  TO.Decompose = Opts.FastSchedule;
  TO.DimensionMatch = Opts.FastSchedule;
  TO.WarmStart = Opts.FastSchedule;
  // computeSchedule records per-edge satisfaction levels into the graph;
  // the memoized DepsArt carries them afterwards, exactly like the
  // DG member of the one-shot PlutoResult always has.
  auto S = computeSchedule(ParsedArt->Prog, *DepsArt, TO);
  if (budgetTripped()) {
    // Exhaustion wins over whatever the truncated search produced (a
    // garbage schedule or a spurious abort).
    FailStatus = StatusCode::ResourceExhausted;
    return Err(budgetMessage());
  }
  if (!S) {
    // Any scheduling-search failure on a parseable program (budget abort,
    // no legal affine schedule) is the schedule-abort class.
    FailStatus = StatusCode::ScheduleAbort;
    return Err(S.error());
  }
  SchedArt = std::move(*S);
  return static_cast<const Schedule *>(&*SchedArt);
}

Result<const PlutoResult *> Pipeline::lowered() {
  if (LoweredArt) {
    count(Counter::StageReuses);
    return static_cast<const PlutoResult *>(&*LoweredArt);
  }
  auto S = scheduled();
  if (!S)
    return Err(S.error());
  // Lowering consumes its inputs; feed it copies so the parse/deps/schedule
  // artifacts stay memoized for re-lowering.
  auto L = lowerSchedule(*ParsedArt, *DepsArt, *SchedArt);
  if (budgetTripped()) {
    FailStatus = StatusCode::ResourceExhausted;
    return Err(budgetMessage());
  }
  if (!L)
    return Err(L.error());
  LoweredArt = std::move(*L);
  return static_cast<const PlutoResult *>(&*LoweredArt);
}

Result<PlutoResult> Pipeline::takeLowered() {
  auto L = lowered();
  if (!L)
    return Err(L.error());
  PlutoResult R = std::move(*LoweredArt);
  LoweredArt.reset();
  EmittedArt.reset();
  return R;
}

Result<const std::string *> Pipeline::emitted() {
  if (EmittedArt) {
    count(Counter::StageReuses);
    return static_cast<const std::string *>(&*EmittedArt);
  }
  auto L = lowered();
  if (!L)
    return Err(L.error());
  const PlutoResult &R = **L;
  // The service emit policy: without user-provided extents, square
  // parametric extents from the first parameter for every array (the same
  // documented default the CLI and plutocc use).
  EmitOptions EO;
  std::string DefaultExtent =
      R.program().ParamNames.empty() ? "1024" : R.program().ParamNames[0];
  for (const ArrayInfo &A : R.program().Arrays)
    EO.Extents[A.Name] = std::vector<std::string>(A.Rank, DefaultExtent);
  EO.SymConsts = R.Parsed.SymConsts;
  EmittedArt = emitC(R.program(), *R.Ast, EO);
  return static_cast<const std::string *>(&*EmittedArt);
}

std::string Pipeline::canonicalizeSource(const std::string &Source) {
  std::string Out;
  Out.reserve(Source.size());
  std::string Line;
  auto flushLine = [&] {
    while (!Line.empty() && (Line.back() == ' ' || Line.back() == '\t'))
      Line.pop_back();
    Out += Line;
    Out += '\n';
    Line.clear();
  };
  for (char C : Source) {
    if (C == '\r')
      continue;
    if (C == '\n')
      flushLine();
    else
      Line += C;
  }
  if (!Line.empty())
    flushLine();
  // Trim leading/trailing blank lines.
  size_t Begin = 0;
  while (Begin < Out.size() && Out[Begin] == '\n')
    ++Begin;
  size_t End = Out.size();
  while (End > Begin + 1 && Out[End - 1] == '\n' && Out[End - 2] == '\n')
    --End;
  return Out.substr(Begin, End - Begin);
}

std::string Pipeline::cacheKey(const std::string &Source) const {
  Sha256 H;
  H.update(canonicalizeSource(Source));
  H.update("\x1f", 1);
  H.update(Fp);
  H.update("\x1f", 1);
  H.update(ToolchainVersion, sizeof(ToolchainVersion) - 1);
  return H.hexDigest();
}

CompileResponse Pipeline::compileRequest(const CompileRequest &Req) {
  CompileResponse Resp;
  Resp.Name = Req.Name;
  // Fingerprint comparison, not field-wise equality: batch and daemon
  // workers route requests to sessions keyed by fingerprint, and the
  // fingerprint deliberately looks through fields the pipeline ignores
  // (PlutoOptions::normalized()) - e.g. WavefrontDegrees when Parallelize
  // is off. Such requests are legitimately served by this session.
  if (Req.Opts != Opts && Req.Opts.fingerprint() != Fp) {
    Resp.Status = StatusCode::BadRequest;
    Resp.Error = "request options do not match this session's options "
                 "(route requests to a session with a matching "
                 "fingerprint, or use compileRequests())";
    return Resp;
  }
  Resp.Key = cacheKey(Req.Source);
  setSource(Req.Source);

  // The compute path tags its StatusCode onto the error string so the
  // classification survives the single-flight handoff: a coalesced waiter
  // receives the leader's tagged error, not its own session state.
  bool RanCold = false;
  auto Cold = [&]() -> Result<std::string> {
    RanCold = true;
    // Install the request's budget for the duration of the cold compile
    // (cache hits are never charged). A real allocation failure anywhere
    // in the stages is the memory budget's hard form; both classify as
    // resource-exhausted.
    std::optional<Budget> B;
    std::optional<ScopedBudget> Install;
    if (!Req.Budget.unlimited()) {
      B.emplace(Req.Budget);
      Install.emplace(&*B);
    }
    try {
      auto E = emitted();
      if (!E) {
        if (FailStatus == StatusCode::ResourceExhausted)
          count(Counter::BudgetExhausted);
        return Err(detail::encodeStatusError(FailStatus, E.error()));
      }
      return **E;
    } catch (const std::bad_alloc &) {
      FailStatus = StatusCode::ResourceExhausted;
      count(Counter::BudgetExhausted);
      return Err(detail::encodeStatusError(StatusCode::ResourceExhausted,
                                           "out of memory"));
    }
  };
  Result<std::string> R =
      Cache ? Cache->getOrCompute(Resp.Key, Cold) : Cold();
  if (!R) {
    auto [St, Msg] = detail::decodeStatusError(R.error());
    Resp.Status = St;
    Resp.Error = Msg;
    if (St == StatusCode::SourceError) {
      // Populate the structured diagnostics: from this session when it ran
      // the parse itself, by re-parsing (cheap, frontend-only) when the
      // failure was coalesced from another session.
      if (!SrcDiags.empty())
        Resp.Diags = SrcDiags;
      else
        Resp.Diags = parseSourceDiags(Req.Source).Diags;
    }
    return Resp;
  }
  Resp.Status = StatusCode::Ok;
  Resp.EmittedC = std::move(*R);
  Resp.CacheHit = !RanCold;
  return Resp;
}

Result<CompileOutput> Pipeline::compile(std::string Source) {
  CompileRequest Req;
  Req.Source = std::move(Source);
  Req.Opts = Opts;
  CompileResponse Resp = compileRequest(Req);
  if (!Resp.ok())
    return Err(Resp.Error);
  CompileOutput Out;
  Out.Key = std::move(Resp.Key);
  Out.EmittedC = std::move(Resp.EmittedC);
  Out.CacheHit = Resp.CacheHit;
  return Out;
}

Result<PlutoResult> Pipeline::lowerSchedule(ParsedProgram Parsed,
                                            DependenceGraph DG,
                                            Schedule Sched) const {
  PlutoResult R;
  R.Parsed = std::move(Parsed);
  R.DG = std::move(DG);
  R.Sched = std::move(Sched);

  {
    ScopedPassTimer Timer(Pass::Tile);
    R.Sc = buildScop(R.Parsed.Prog, R.Sched);

    if (Opts.Tile) {
      std::vector<Schedule::Band> TileBands =
          tileAllBands(R.Sc, Opts.TileSize, /*MinWidth=*/2);
      if (Opts.SecondLevelTile) {
        // Tile the tile-space bands again, innermost (largest start) first so
        // recorded starts stay valid while rows are inserted.
        for (auto It = TileBands.rbegin(); It != TileBands.rend(); ++It) {
          std::vector<unsigned> Sizes(It->Width, Opts.L2TileSize);
          tileBand(R.Sc, *It, Sizes);
        }
      }
    }

    if (Opts.Parallelize && Opts.Tile) {
      // Wavefront the outermost TILE band when it lacks a parallel loop
      // (Algorithm 2). The wavefront is a tile-space transformation: applied
      // to untiled point loops it would serialize along a diagonal with poor
      // locality, so without tiling we rely on existing parallel rows only.
      std::vector<Schedule::Band> Bands = R.Sc.bands();
      if (!Bands.empty())
        wavefrontBand(R.Sc, Bands.front(), Opts.WavefrontDegrees);
    }

    if (Opts.Vectorize)
      reorderForVectorization(R.Sc);
  }

  CodeGenOptions CG = Opts.CG;
  if (Opts.Parallelize && CG.ParallelPragmaRows.empty()) {
    pickParallelPragmaRows(R.Sc, CG);
    if (Trace *T = activeTrace())
      for (unsigned Row : CG.ParallelPragmaRows)
        T->record("driver",
                  "omp parallel for pragma on row " + std::to_string(Row));
  }
  classifyLoops(R.Sc);

  ScopedPassTimer Timer(Pass::Codegen);
  auto Ast = generateAst(R.Sc, CG);
  if (!Ast)
    return Err(Ast.error());
  R.Ast = std::move(*Ast);
  simplifyAst(R.Ast);
  return R;
}

Result<CgNodePtr> Pipeline::originalAst(const Program &Prog) const {
  // Apply the same context assumption the optimizing path uses, so the
  // reference AST is specialized for an identical parameter space. The
  // caller's program may already carry the bounds (the parse stage adds
  // them in place); normalize() collapses the duplicates.
  Program Bounded = Prog;
  for (const std::string &P : Bounded.ParamNames)
    Bounded.addContextBound(P, Opts.ParamMin);
  Bounded.Context.normalize();
  Schedule Ident = identitySchedule(Bounded);
  Scop Sc = buildScop(Bounded, Ident);
  CodeGenOptions CG;
  auto Ast = generateAst(Sc, CG);
  if (!Ast)
    return Ast;
  simplifyAst(*Ast);
  return Ast;
}
