//===- service/ResultCache.h - Content-addressed result cache ---*- C++-*-===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Content-addressed cache of emitted C, keyed by
///   sha256(canonical source \x1f options fingerprint \x1f toolchain version)
/// (Pipeline::cacheKey computes the key; this class only stores). Three
/// tiers of behaviour:
///
///  - an in-memory LRU bounded by a byte budget (keys + values accounted),
///  - optional persistence of every emitted unit under
///    `<dir>/v<CacheDiskFormatVersion>/<key>.c` - raw bytes, written via
///    temp-file + rename so concurrent plutopp processes sharing one
///    --cache-dir never observe torn entries,
///  - single-flight deduplication: getOrCompute() runs the compile
///    callback at most once per key; concurrent callers with the same key
///    block on the leader and share its result.
///
/// All methods are thread-safe. Cache events feed both local counters
/// (snapshot(), for tests and cache-only tooling) and the global
/// observe::PassStats sink when one is installed.
///
//===----------------------------------------------------------------------===//

#ifndef PLUTOPP_SERVICE_RESULTCACHE_H
#define PLUTOPP_SERVICE_RESULTCACHE_H

#include "support/Result.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

namespace pluto {

class ResultCache {
public:
  struct Config {
    /// In-memory budget; entries are evicted LRU-first to stay under it.
    /// A value too large for the whole budget is never memory-resident
    /// (it still persists to disk when enabled).
    size_t MaxBytes = 64ull << 20;
    /// Root of the persistent cache; empty disables the disk tier. The
    /// directory (and the versioned subdirectory) are created on demand.
    std::string DiskDir;
  };

  /// Default configuration (64 MiB memory budget, no disk tier).
  ResultCache();
  explicit ResultCache(Config C);
  virtual ~ResultCache() = default;

  /// Looks Key up in memory, then on disk (a disk hit is promoted into
  /// memory). Counts a hit/disk-hit/miss.
  virtual std::optional<std::string> lookup(const std::string &Key);

  /// Inserts (or refreshes) Key -> Value in memory and, when enabled, on
  /// disk. Evicts LRU entries until the budget holds.
  virtual void insert(const std::string &Key, const std::string &Value);

  /// The single-flight entry point: returns the cached value for Key, or
  /// runs Compute to produce it. If another thread is already computing
  /// the same key, blocks until that leader finishes and shares its result
  /// (counted as cache_coalesced). Failed computes are not cached; every
  /// waiter receives the leader's error.
  virtual Result<std::string>
  getOrCompute(const std::string &Key,
               const std::function<Result<std::string>()> &Compute);

  /// True when a disk tier was requested and its directory is usable.
  virtual bool diskEnabled() const { return !DiskRoot.empty(); }

  /// True once repeated disk write failures (ENOSPC, permissions) made the
  /// cache stop attempting writes; reads of existing entries still work
  /// and compiles are unaffected (in-memory tier only).
  bool diskWritesDisabled() const {
    return DiskWritesOff.load(std::memory_order_relaxed);
  }

  /// Consecutive failed disk writes tolerated before the disk write path
  /// turns itself off for the lifetime of this cache.
  static constexpr uint64_t MaxDiskWriteErrors = 8;

  /// Local event counters (monotonic since construction) plus current
  /// occupancy, for tests and reporting without a PassStats sink.
  struct Snapshot {
    uint64_t Hits = 0, DiskHits = 0, Misses = 0, Evictions = 0,
             Coalesced = 0, WriteErrors = 0;
    size_t Bytes = 0, Entries = 0;

    Snapshot &operator+=(const Snapshot &O) {
      Hits += O.Hits;
      DiskHits += O.DiskHits;
      Misses += O.Misses;
      Evictions += O.Evictions;
      Coalesced += O.Coalesced;
      WriteErrors += O.WriteErrors;
      Bytes += O.Bytes;
      Entries += O.Entries;
      return *this;
    }
  };
  virtual Snapshot snapshot() const;

private:
  struct Entry {
    std::string Value;
    std::list<std::string>::iterator LruIt;
  };
  struct Flight {
    bool Done = false;
    Result<std::string> R = Err("in flight");
    std::condition_variable Cv;
  };

  // All below guarded by Mu (Flight::Cv waits on Mu too).
  mutable std::mutex Mu;
  std::list<std::string> Lru; ///< front = most recently used key
  std::unordered_map<std::string, Entry> Map;
  std::unordered_map<std::string, std::shared_ptr<Flight>> InFlight;
  size_t MaxBytes = 0;
  size_t Bytes = 0;
  Snapshot Counts;
  std::string DiskRoot; ///< `<DiskDir>/v<N>`, empty when disk is off
  // diskWrite() is const (it runs outside Mu from const-ish paths), so the
  // degraded-mode state is atomic and mutable.
  mutable std::atomic<uint64_t> DiskWriteErrors{0};
  mutable std::atomic<bool> DiskWritesOff{false};

  /// Memory-tier insert; assumes Mu held. Returns evictions performed.
  void insertLocked(const std::string &Key, std::string Value);
  std::optional<std::string> lookupLocked(const std::string &Key);
  std::optional<std::string> diskRead(const std::string &Key) const;
  void diskWrite(const std::string &Key, const std::string &Value) const;
  /// Counts one failed disk write (What names the failing step) and turns
  /// the write path off after MaxDiskWriteErrors of them.
  void noteDiskWriteError(const char *What) const;
};

} // namespace pluto

#endif // PLUTOPP_SERVICE_RESULTCACHE_H
