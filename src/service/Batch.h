//===- service/Batch.h - Concurrent batch compilation -----------*- C++-*-===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// compileBatch(): run many compilation jobs against one option set on a
/// pool of worker threads, each worker driving its own Pipeline session
/// against one shared ResultCache. Guarantees:
///
///  - deterministic result ordering: Results[i] always corresponds to
///    Jobs[i], whatever the completion order was;
///  - single-flight dedup: jobs whose (canonical source, options,
///    toolchain version) keys collide compile once - duplicates either
///    block on the in-flight leader (ResultCache::getOrCompute) or hit the
///    cache, so a batch of N identical kernels costs one compile;
///  - failure isolation: one job's parse/transform error fails only its
///    own slot.
///
/// When no cache is supplied, the batch still creates a private in-memory
/// cache so intra-batch dedup holds.
///
//===----------------------------------------------------------------------===//

#ifndef PLUTOPP_SERVICE_BATCH_H
#define PLUTOPP_SERVICE_BATCH_H

#include "service/Pipeline.h"

#include <vector>

namespace pluto {

/// One unit of batch work; Name is only for diagnostics.
struct CompileJob {
  std::string Name;
  std::string Source;
};

struct BatchOptions {
  /// Worker threads; 0 = std::thread::hardware_concurrency(). The pool is
  /// never larger than the job count.
  unsigned Jobs = 1;
  /// Shared result cache; null = private in-memory cache for this batch.
  std::shared_ptr<ResultCache> Cache;
};

/// Compiles every job under Opts. Fails as a whole only on invalid
/// options; per-job failures are carried in the matching result slot.
Result<std::vector<Result<CompileOutput>>>
compileBatch(const std::vector<CompileJob> &Jobs, const PlutoOptions &Opts,
             const BatchOptions &BO = BatchOptions());

} // namespace pluto

#endif // PLUTOPP_SERVICE_BATCH_H
