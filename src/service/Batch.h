//===- service/Batch.h - Concurrent batch compilation -----------*- C++-*-===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// compileRequests(): run many CompileRequests - each carrying its own
/// option set - on a pool of worker threads, each worker driving Pipeline
/// sessions (one per distinct options fingerprint) against one shared
/// ResultCache. Guarantees:
///
///  - deterministic result ordering: Results[i] always corresponds to
///    Reqs[i], whatever the completion order was;
///  - single-flight dedup: jobs whose (canonical source, options,
///    toolchain version) keys collide compile once - duplicates either
///    block on the in-flight leader (ResultCache::getOrCompute) or hit the
///    cache, so a batch of N identical kernels costs one compile;
///  - failure isolation: one job's failure is confined to its own
///    response slot, classified by the StatusCode taxonomy (an invalid
///    per-request option set is that request's bad-request response).
///
/// When no cache is supplied, the batch still creates a private in-memory
/// cache so intra-batch dedup holds. compileBatch() is the legacy shim:
/// one option set for the whole batch, results flattened back to
/// Result<CompileOutput> slots.
///
//===----------------------------------------------------------------------===//

#ifndef PLUTOPP_SERVICE_BATCH_H
#define PLUTOPP_SERVICE_BATCH_H

#include "service/Pipeline.h"

#include <vector>

namespace pluto {

/// One unit of batch work; Name is only for diagnostics.
struct CompileJob {
  std::string Name;
  std::string Source;
};

struct BatchOptions {
  /// Worker threads; 0 = std::thread::hardware_concurrency(). The pool is
  /// never larger than the job count.
  unsigned Jobs = 1;
  /// Shared result cache; null = private in-memory cache for this batch.
  std::shared_ptr<ResultCache> Cache;
};

/// Compiles every request on the worker pool; Responses[i] answers
/// Reqs[i]. Never fails as a whole: per-request problems (including an
/// invalid option set) come back as that request's response status.
std::vector<CompileResponse>
compileRequests(const std::vector<CompileRequest> &Reqs,
                const BatchOptions &BO = BatchOptions());

/// Legacy shim over compileRequests(): compiles every job under one
/// option set. Fails as a whole only on invalid options; per-job failures
/// are carried in the matching result slot as flattened error strings.
Result<std::vector<Result<CompileOutput>>>
compileBatch(const std::vector<CompileJob> &Jobs, const PlutoOptions &Opts,
             const BatchOptions &BO = BatchOptions());

} // namespace pluto

#endif // PLUTOPP_SERVICE_BATCH_H
