//===- service/CompileService.cpp - Request/response compile API ----------===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
//===----------------------------------------------------------------------===//

#include "service/CompileService.h"

#include "support/Json.h"

using namespace pluto;

const char *pluto::statusCodeName(StatusCode S) {
  switch (S) {
  case StatusCode::Ok:
    return "ok";
  case StatusCode::BadRequest:
    return "bad-request";
  case StatusCode::SourceError:
    return "source-error";
  case StatusCode::ScheduleAbort:
    return "schedule-abort";
  case StatusCode::Internal:
    return "internal";
  case StatusCode::Overloaded:
    return "overloaded";
  case StatusCode::ResourceExhausted:
    return "resource-exhausted";
  }
  return "internal";
}

std::optional<StatusCode> pluto::statusCodeFromName(const std::string &Name) {
  for (StatusCode S :
       {StatusCode::Ok, StatusCode::BadRequest, StatusCode::SourceError,
        StatusCode::ScheduleAbort, StatusCode::Internal,
        StatusCode::Overloaded, StatusCode::ResourceExhausted})
    if (Name == statusCodeName(S))
      return S;
  return std::nullopt;
}

int pluto::exitCodeFor(StatusCode S) {
  switch (S) {
  case StatusCode::Ok:
    return 0;
  case StatusCode::BadRequest:
  case StatusCode::SourceError:
    return 2;
  case StatusCode::ScheduleAbort:
  case StatusCode::Internal:
    return 1;
  case StatusCode::Overloaded:
    return 3;
  case StatusCode::ResourceExhausted:
    return 4;
  }
  return 1;
}

int pluto::aggregateExitCodes(int A, int B) {
  // Precedence 2 > 1 > 4 > 3 > 0: bad input beats internal failure beats
  // budget exhaustion beats overload beats success.
  static constexpr int Order[] = {2, 1, 4, 3, 0};
  for (int C : Order)
    if (A == C || B == C)
      return C;
  return A ? A : B;
}

void pluto::appendDiagnosticJson(std::string &Out, const std::string &Unit,
                                 const Diagnostic &D) {
  Out += "{\"unit\": " + jsonQuote(Unit) +
         ", \"line\": " + std::to_string(D.Line) +
         ", \"col\": " + std::to_string(D.Col) + ", \"severity\": \"" +
         (D.Sev == Severity::Error ? "error" : "warning") +
         "\", \"message\": " + jsonQuote(D.Message) + "}";
}

std::string
pluto::diagnosticsJsonArray(const std::string &Unit,
                            const std::vector<Diagnostic> &Diags) {
  std::string Out = "[";
  for (size_t I = 0; I < Diags.size(); ++I) {
    if (I)
      Out += ", ";
    appendDiagnosticJson(Out, Unit, Diags[I]);
  }
  Out += "]";
  return Out;
}

std::string pluto::detail::encodeStatusError(StatusCode S,
                                             const std::string &Msg) {
  std::string Out;
  Out.reserve(Msg.size() + 2);
  Out += '\x01';
  Out += static_cast<char>('0' + static_cast<unsigned>(S));
  Out += Msg;
  return Out;
}

std::pair<StatusCode, std::string>
pluto::detail::decodeStatusError(const std::string &E) {
  if (E.size() >= 2 && E[0] == '\x01' && E[1] >= '0' &&
      E[1] < '0' + static_cast<char>(7))
    return {static_cast<StatusCode>(E[1] - '0'), E.substr(2)};
  return {StatusCode::Internal, E};
}
