//===- service/ResultCache.cpp - Content-addressed result cache -----------===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
//===----------------------------------------------------------------------===//

#include "service/ResultCache.h"

#include "observe/PassStats.h"
#include "service/Version.h"
#include "support/FaultInjector.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>
#include <thread>

using namespace pluto;
namespace fs = std::filesystem;

ResultCache::ResultCache() : ResultCache(Config()) {}

ResultCache::ResultCache(Config C) {
  MaxBytes = C.MaxBytes;
  if (C.DiskDir.empty())
    return;
  fs::path Root = fs::path(C.DiskDir) /
                  ("v" + std::to_string(CacheDiskFormatVersion));
  std::error_code Ec;
  fs::create_directories(Root, Ec);
  // An unusable directory degrades to a memory-only cache rather than
  // failing compiles; the CLI checks diskEnabled() and warns.
  if (!Ec && fs::is_directory(Root, Ec) && !Ec)
    DiskRoot = Root.string();
}

std::optional<std::string> ResultCache::lookupLocked(const std::string &Key) {
  auto It = Map.find(Key);
  if (It != Map.end()) {
    Lru.splice(Lru.begin(), Lru, It->second.LruIt);
    ++Counts.Hits;
    count(Counter::CacheHits);
    return It->second.Value;
  }
  if (auto FromDisk = diskRead(Key)) {
    ++Counts.DiskHits;
    count(Counter::CacheDiskHits);
    insertLocked(Key, *FromDisk);
    return FromDisk;
  }
  return std::nullopt;
}

std::optional<std::string> ResultCache::lookup(const std::string &Key) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto V = lookupLocked(Key);
  if (!V) {
    ++Counts.Misses;
    count(Counter::CacheMisses);
  }
  return V;
}

void ResultCache::insertLocked(const std::string &Key, std::string Value) {
  auto It = Map.find(Key);
  if (It != Map.end()) {
    Bytes -= It->second.Value.size() + Key.size();
    Bytes += Value.size() + Key.size();
    It->second.Value = std::move(Value);
    Lru.splice(Lru.begin(), Lru, It->second.LruIt);
  } else {
    Lru.push_front(Key);
    Bytes += Key.size() + Value.size();
    Map.emplace(Key, Entry{std::move(Value), Lru.begin()});
  }
  while (Bytes > MaxBytes && !Lru.empty()) {
    const std::string &Victim = Lru.back();
    auto VIt = Map.find(Victim);
    Bytes -= VIt->second.Value.size() + Victim.size();
    Map.erase(VIt);
    Lru.pop_back();
    ++Counts.Evictions;
    count(Counter::CacheEvictions);
  }
}

void ResultCache::insert(const std::string &Key, const std::string &Value) {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    insertLocked(Key, Value);
  }
  diskWrite(Key, Value);
}

Result<std::string>
ResultCache::getOrCompute(const std::string &Key,
                          const std::function<Result<std::string>()> &Compute) {
  std::shared_ptr<Flight> F;
  {
    std::unique_lock<std::mutex> Lock(Mu);
    if (auto V = lookupLocked(Key))
      return *V;
    auto It = InFlight.find(Key);
    if (It != InFlight.end()) {
      // Join the leader: it will cache on success, so no further work.
      F = It->second;
      ++Counts.Coalesced;
      count(Counter::CacheCoalesced);
      F->Cv.wait(Lock, [&] { return F->Done; });
      return F->R;
    }
    ++Counts.Misses;
    count(Counter::CacheMisses);
    F = std::make_shared<Flight>();
    InFlight.emplace(Key, F);
  }

  Result<std::string> R = Compute();
  bool Ok = R.hasValue();
  std::string Value = Ok ? *R : std::string();
  {
    std::lock_guard<std::mutex> Lock(Mu);
    if (Ok)
      insertLocked(Key, Value);
    F->R = R;
    F->Done = true;
    InFlight.erase(Key);
  }
  F->Cv.notify_all();
  if (Ok)
    diskWrite(Key, Value);
  return R;
}

ResultCache::Snapshot ResultCache::snapshot() const {
  std::lock_guard<std::mutex> Lock(Mu);
  Snapshot S = Counts;
  S.WriteErrors = DiskWriteErrors.load(std::memory_order_relaxed);
  S.Bytes = Bytes;
  S.Entries = Map.size();
  return S;
}

std::optional<std::string> ResultCache::diskRead(const std::string &Key) const {
  if (DiskRoot.empty())
    return std::nullopt;
  // An unreadable disk entry is just a miss (the compile runs cold); the
  // fault site lets tests drive that path deterministically.
  if (FaultInjector::shouldFail("cache.disk_read"))
    return std::nullopt;
  std::ifstream In(fs::path(DiskRoot) / (Key + ".c"), std::ios::binary);
  if (!In)
    return std::nullopt;
  std::ostringstream SS;
  SS << In.rdbuf();
  if (!In.good() && !In.eof())
    return std::nullopt;
  return SS.str();
}

void ResultCache::diskWrite(const std::string &Key,
                            const std::string &Value) const {
  if (DiskRoot.empty() || DiskWritesOff.load(std::memory_order_relaxed))
    return;
  // Write-once semantics: an existing entry is already byte-identical (the
  // key is a content address), so skip the IO.
  fs::path Final = fs::path(DiskRoot) / (Key + ".c");
  std::error_code Ec;
  if (fs::exists(Final, Ec))
    return;
  if (FaultInjector::shouldFail("cache.disk_write")) {
    noteDiskWriteError("injected fault");
    return;
  }
  // Unique temp name per thread+object so concurrent writers of the same
  // key race only at the (atomic) rename.
  std::ostringstream TmpName;
  TmpName << Key << ".tmp." << std::hash<std::thread::id>{}(
                                   std::this_thread::get_id());
  fs::path Tmp = fs::path(DiskRoot) / TmpName.str();
  {
    std::ofstream Out(Tmp, std::ios::binary | std::ios::trunc);
    if (!Out) {
      noteDiskWriteError("open failed");
      return;
    }
    Out.write(Value.data(), static_cast<std::streamsize>(Value.size()));
    if (!Out.good()) {
      // ENOSPC and friends surface here; drop the torn temp file.
      noteDiskWriteError("write failed");
      Out.close();
      fs::remove(Tmp, Ec);
      return;
    }
  }
  fs::rename(Tmp, Final, Ec);
  if (Ec) {
    noteDiskWriteError("rename failed");
    fs::remove(Tmp, Ec);
  }
}

void ResultCache::noteDiskWriteError(const char *What) const {
  count(Counter::CacheWriteErrors);
  uint64_t N = DiskWriteErrors.fetch_add(1, std::memory_order_relaxed) + 1;
  // Degrade loudly but only once per transition: compiles themselves are
  // unaffected (the in-memory tier keeps serving), so a flaky or full disk
  // must never turn into per-request noise.
  if (N == 1)
    std::fprintf(stderr,
                 "plutopp: warning: result-cache disk write failed (%s); "
                 "continuing with the in-memory cache\n",
                 What);
  if (N == MaxDiskWriteErrors) {
    DiskWritesOff.store(true, std::memory_order_relaxed);
    std::fprintf(stderr,
                 "plutopp: warning: %llu result-cache disk writes failed; "
                 "disabling the disk write path (reads and compiles are "
                 "unaffected)\n",
                 static_cast<unsigned long long>(N));
  }
}
