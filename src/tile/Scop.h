//===- tile/Scop.h - Scheduled program for tiling & codegen -----*- C++-*-===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The scheduled form of a program: per statement, a (possibly supernode-
/// extended) iteration domain and a scattering function (paper Section 5).
/// Built from a Program + Schedule, transformed in place by the tiling and
/// wavefront passes, and finally consumed by the code generator. This is
/// the interface contract the original tool-chain has between Pluto and
/// CLooG: domains + statement-wise scatterings.
///
//===----------------------------------------------------------------------===//

#ifndef PLUTOPP_TILE_SCOP_H
#define PLUTOPP_TILE_SCOP_H

#include "ir/Program.h"
#include "transform/Schedule.h"

#include <string>
#include <vector>

namespace pluto {

/// One statement with its (extended) domain and scattering.
struct ScopStmt {
  unsigned Id = 0;
  /// Names of the domain iterators, outermost first. Tiling prepends
  /// supernode iterators (zT...); the trailing entries remain the original
  /// loop iterators.
  std::vector<std::string> IterNames;
  /// Domain over [IterNames | params | 1].
  ConstraintSystem Domain;
  /// Scattering: one row per transformed dimension, over
  /// [IterNames | params | 1]. All statements share the same row count.
  IntMatrix Scatter;
  /// Index (into IterNames) of each ORIGINAL iterator of the statement, in
  /// original order - used to reconstruct statement-body arguments.
  std::vector<unsigned> OrigIterPos;
};

/// A scheduled program: statements plus per-row metadata.
struct Scop {
  const Program *Prog = nullptr;
  std::vector<ScopStmt> Stmts;
  /// Metadata per scattering row (shared across statements).
  std::vector<RowInfo> Rows;

  unsigned numRows() const { return static_cast<unsigned>(Rows.size()); }

  /// A permutable band of scattering rows (recomputed after each pass).
  std::vector<Schedule::Band> bands() const {
    Schedule S;
    S.Rows = Rows;
    return S.bands();
  }

  std::string toString() const;
};

/// Builds the initial Scop from a schedule: domains are the statements'
/// original domains, scatterings are the schedule rows (parameter
/// coefficients zero).
Scop buildScop(const Program &Prog, const Schedule &Sched);

} // namespace pluto

#endif // PLUTOPP_TILE_SCOP_H
