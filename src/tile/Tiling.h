//===- tile/Tiling.h - Tiling and wavefront passes --------------*- C++-*-===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Algorithm 1 (tiling for multiple statements under transformations),
/// Algorithm 2 (tiled pipelined-parallel code generation via a tile-space
/// wavefront), and the intra-tile reordering post-pass of Section 5.4.
///
/// Tiling a band of width k adds, per statement, one supernode iterator
/// zT_j per band row with the Ancourt-Irigoin style constraints
///     tau_j * zT_j <= phi_j(i) <= tau_j * zT_j + tau_j - 1
/// and k new scattering rows (the tile-space loops) ahead of the band. The
/// same hyperplanes are used for the tile space and intra-tile loops, so
/// legality follows from Theorem 1; tiling can be applied repeatedly
/// (register/L1/L2 levels).
///
//===----------------------------------------------------------------------===//

#ifndef PLUTOPP_TILE_TILING_H
#define PLUTOPP_TILE_TILING_H

#include "tile/Scop.h"

namespace pluto {

/// Tiles the band of scattering rows [Band.Start, Band.Start + Band.Width)
/// with the given tile sizes (one per row; all > 0). Returns the band of
/// new tile-space rows (width == Band.Width, starting at Band.Start).
Schedule::Band tileBand(Scop &S, const Schedule::Band &Band,
                        const std::vector<unsigned> &TileSizes);

/// Tiles every permutable band of width >= MinWidth once with TileSize in
/// all dimensions. Returns the tile-space bands created.
std::vector<Schedule::Band> tileAllBands(Scop &S, unsigned TileSize,
                                         unsigned MinWidth = 2);

/// Algorithm 2: transforms the tile-space band so its first row becomes the
/// wavefront sum phi^1 + ... + phi^{m+1} and rows 2..m+1 become parallel.
/// Degrees is clamped to Band.Width - 1. No-op (returns false) if the band
/// already contains a parallel row (communication-free parallelism exists)
/// or Band.Width < 2.
bool wavefrontBand(Scop &S, const Schedule::Band &Band, unsigned Degrees = 1);

/// Intra-tile reordering (Section 5.4): within the innermost run of
/// non-scalar rows, moves a parallel row to the innermost position and
/// flags it for vectorization. Tile shapes and the tile-space schedule are
/// unchanged. Returns true if a loop was moved/flagged.
bool reorderForVectorization(Scop &S);

} // namespace pluto

#endif // PLUTOPP_TILE_TILING_H
