//===- tile/Tiling.cpp - Tiling and wavefront passes ----------------------===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
//===----------------------------------------------------------------------===//

#include "tile/Tiling.h"

#include "observe/PassStats.h"
#include "observe/Trace.h"

#include <algorithm>

using namespace pluto;

Schedule::Band pluto::tileBand(Scop &S, const Schedule::Band &Band,
                               const std::vector<unsigned> &TileSizes) {
  assert(TileSizes.size() == Band.Width && "one tile size per band row");
  unsigned K = Band.Width;
  unsigned Start = Band.Start;

  // Fresh band id for the new tile-space rows.
  int NewBandId = 0;
  for (const RowInfo &R : S.Rows)
    NewBandId = std::max(NewBandId, R.BandId + 1);

  for (ScopStmt &St : S.Stmts) {
    unsigned NP = S.Prog->numParams();
    unsigned OldIters = static_cast<unsigned>(St.IterNames.size());
    // Insert K supernode iterators at the front of the domain/scattering
    // variable order (they become the outer loops).
    St.Domain.insertDims(0, K);
    St.Scatter.insertZeroColumns(0, K);
    for (unsigned &P : St.OrigIterPos)
      P += K;
    // Supernode iterator names: unique per (band row, nesting level).
    for (unsigned J = 0; J < K; ++J)
      St.IterNames.insert(St.IterNames.begin() + J,
                          "zT" + std::to_string(Start + J) + "_" +
                              std::to_string(OldIters));

    unsigned Cols = St.Scatter.numCols(); // iters + params + 1.
    unsigned NIters = static_cast<unsigned>(St.IterNames.size());
    assert(Cols == NIters + NP + 1 && "scatter width mismatch");

    // Tile-shape constraints per band row J (paper Algorithm 1, line 5):
    //   phi_J(i) - tau * zT_J >= 0
    //   tau * zT_J + tau - 1 - phi_J(i) >= 0
    for (unsigned J = 0; J < K; ++J) {
      BigInt Tau(static_cast<long long>(TileSizes[J]));
      // NOTE: scattering rows were not reordered yet; band row J is still
      // at index Start + J and its columns were shifted by the K inserted
      // iterator columns (supernode coefficients are zero there).
      std::vector<BigInt> Lower(NIters + NP + 1, BigInt(0));
      std::vector<BigInt> Upper(NIters + NP + 1, BigInt(0));
      for (unsigned C = 0; C < Cols; ++C) {
        const BigInt &V = St.Scatter(Start + J, C);
        // Scatter columns: [iters | params | 1]; domain rows need
        // [iters | params | 1] as well - same layout.
        Lower[C] = V;
        Upper[C] = -V;
      }
      Lower[J] -= Tau;
      Upper[J] += Tau;
      Upper[NIters + NP] += Tau - BigInt(1);
      St.Domain.addIneq(std::move(Lower));
      St.Domain.addIneq(std::move(Upper));
    }

    // New scattering rows: zT_J, inserted before the band.
    for (unsigned J = 0; J < K; ++J) {
      std::vector<BigInt> Row(Cols, BigInt(0));
      Row[J] = BigInt(1);
      St.Scatter.insertRow(Start + J, std::move(Row));
    }
  }

  // Row metadata: tile-space rows inherit parallelism from the hyperplane
  // they aggregate (same dependence components, Theorem 1). Snapshot the
  // hyperplane rows first - insertion shifts indices.
  std::vector<RowInfo> Infos;
  for (unsigned J = 0; J < K; ++J) {
    RowInfo Info;
    Info.IsScalar = false;
    Info.IsParallel = S.Rows[Start + J].IsParallel;
    // Reduction-carried parallelism propagates too: the tile loop runs
    // parallel only under the same reduction clauses as the point loop.
    Info.Reductions = S.Rows[Start + J].Reductions;
    Info.BandId = NewBandId;
    Infos.push_back(Info);
  }
  S.Rows.insert(S.Rows.begin() + Start, Infos.begin(), Infos.end());
  Schedule::Band TileBand;
  TileBand.Start = Start;
  TileBand.Width = K;
  for (unsigned J = 0; J < K; ++J)
    TileBand.HasSequentialRow |= !S.Rows[Start + J].IsParallel;
  count(Counter::BandsTiled);
  if (Trace *T = activeTrace()) {
    std::string Sizes;
    for (unsigned J = 0; J < K; ++J)
      Sizes += (J ? "x" : "") + std::to_string(TileSizes[J]);
    T->record("tile", "tiled band of width " + std::to_string(K) +
                          " at row " + std::to_string(Start) +
                          " with tile sizes " + Sizes);
  }
  return TileBand;
}

std::vector<Schedule::Band> pluto::tileAllBands(Scop &S, unsigned TileSize,
                                                unsigned MinWidth) {
  std::vector<Schedule::Band> Result;
  // Bands shift as rows are inserted; process from innermost (last) to
  // first so recorded starts stay valid, then collect.
  std::vector<Schedule::Band> Bands = S.bands();
  for (auto It = Bands.rbegin(); It != Bands.rend(); ++It) {
    if (It->Width < MinWidth)
      continue;
    std::vector<unsigned> Sizes(It->Width, TileSize);
    Result.push_back(tileBand(S, *It, Sizes));
  }
  std::reverse(Result.begin(), Result.end());
  return Result;
}

bool pluto::wavefrontBand(Scop &S, const Schedule::Band &Band,
                          unsigned Degrees) {
  if (Band.Width < 2)
    return false;
  for (unsigned J = 0; J < Band.Width; ++J)
    if (S.Rows[Band.Start + J].IsParallel)
      return false; // Communication-free parallelism already available.
  unsigned M = std::min(Degrees, Band.Width - 1);
  // phi^1 <- phi^1 + ... + phi^{m+1} (unimodular on the tile space).
  for (ScopStmt &St : S.Stmts) {
    for (unsigned C = 0; C < St.Scatter.numCols(); ++C) {
      BigInt Sum = St.Scatter(Band.Start, C);
      for (unsigned J = 1; J <= M; ++J)
        Sum += St.Scatter(Band.Start + J, C);
      St.Scatter(Band.Start, C) = Sum;
    }
  }
  for (unsigned J = 1; J <= M; ++J)
    S.Rows[Band.Start + J].IsParallel = true;
  S.Rows[Band.Start].IsParallel = false;
  count(Counter::WavefrontsApplied);
  if (Trace *T = activeTrace())
    T->record("tile", "wavefronted tile band at row " +
                          std::to_string(Band.Start) + " (" +
                          std::to_string(M) +
                          " degree(s) of pipelined parallelism)");
  return true;
}

bool pluto::reorderForVectorization(Scop &S) {
  if (S.Rows.empty())
    return false;
  // Operate within the innermost permutable band only: rows of one band are
  // mutually permutable, so rotating inside it never changes tile shapes or
  // the tile-space schedule (Section 5.4).
  std::vector<Schedule::Band> Bands = S.bands();
  if (Bands.empty())
    return false;
  unsigned Begin = Bands.back().Start;
  unsigned End = Begin + Bands.back().Width;
  // Innermost parallel row in the run. Reduction-parallel rows are not
  // vectorization candidates: `omp simd reduction` support is uneven and
  // the serial inner accumulation usually vectorizes anyway.
  int Par = -1;
  for (unsigned R = Begin; R < End; ++R)
    if (S.Rows[R].IsParallel && S.Rows[R].Reductions.empty())
      Par = static_cast<int>(R);
  if (Par < 0)
    return false;
  unsigned P = static_cast<unsigned>(Par);
  // Rotate row P to position End-1 (bubble inward; preserves the relative
  // order of the other rows; tile-space rows are outside this run).
  for (unsigned R = P; R + 1 < End; ++R) {
    for (ScopStmt &St : S.Stmts)
      std::swap(St.Scatter.row(R), St.Scatter.row(R + 1));
    std::swap(S.Rows[R], S.Rows[R + 1]);
  }
  S.Rows[End - 1].IsVector = true;
  count(Counter::VectorizedLoops);
  if (Trace *T = activeTrace())
    T->record("tile", "rotated parallel row " + std::to_string(P) +
                          " innermost (row " + std::to_string(End - 1) +
                          ") for vectorization");
  return true;
}
