//===- tile/Scop.cpp - Scheduled program for tiling & codegen -------------===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
//===----------------------------------------------------------------------===//

#include "tile/Scop.h"

using namespace pluto;

Scop pluto::buildScop(const Program &Prog, const Schedule &Sched) {
  Scop S;
  S.Prog = &Prog;
  S.Rows = Sched.Rows;
  unsigned NP = Prog.numParams();
  for (unsigned St = 0; St < Prog.Stmts.size(); ++St) {
    const Statement &Stmt = Prog.Stmts[St];
    ScopStmt CS;
    CS.Id = St;
    CS.IterNames = Stmt.IterNames;
    CS.Domain = Stmt.Domain;
    unsigned M = Stmt.numIters();
    CS.Scatter = IntMatrix(Sched.numRows(), M + NP + 1);
    const IntMatrix &T = Sched.StmtRows[St];
    for (unsigned R = 0; R < Sched.numRows(); ++R) {
      for (unsigned I = 0; I < M; ++I)
        CS.Scatter(R, I) = T(R, I);
      CS.Scatter(R, M + NP) = T(R, M); // c0; params carry no coefficients.
    }
    for (unsigned I = 0; I < M; ++I)
      CS.OrigIterPos.push_back(I);
    S.Stmts.push_back(std::move(CS));
  }
  return S;
}

std::string Scop::toString() const {
  std::string Out;
  for (const ScopStmt &St : Stmts) {
    Out += "S" + std::to_string(St.Id) + " iters:";
    for (const std::string &N : St.IterNames)
      Out += " " + N;
    Out += "\n domain:\n";
    std::vector<std::string> Names = St.IterNames;
    if (Prog)
      Names.insert(Names.end(), Prog->ParamNames.begin(),
                   Prog->ParamNames.end());
    Out += St.Domain.toString(Names);
    Out += " scatter:\n" + St.Scatter.toString();
  }
  return Out;
}
