//===- poly/ConstraintSystem.h - Integer polyhedra ---------------*- C++-*-===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Constraint representation of (unions of) integer polyhedra: a set of
/// inequality rows a.x + c >= 0 and equality rows a.x + c == 0 over a fixed
/// number of variables. This is the workhorse type for iteration domains,
/// dependence polyhedra, Farkas systems and code-generation regions - the
/// role PolyLib plays in the original tool-chain. Projection is
/// Fourier-Motzkin (with exact equality substitution), emptiness is the
/// integer-exact ILP test, and redundancy removal / gist use implication
/// queries. We deliberately avoid the dual (generator) representation; see
/// DESIGN.md section 4.
///
//===----------------------------------------------------------------------===//

#ifndef PLUTOPP_POLY_CONSTRAINTSYSTEM_H
#define PLUTOPP_POLY_CONSTRAINTSYSTEM_H

#include "ilp/LexMin.h"
#include "support/Matrix.h"

#include <string>
#include <vector>

namespace pluto {

/// A conjunction of affine equalities and inequalities over NumVars integer
/// variables. Rows have NumVars + 1 columns; the last column is the constant.
class ConstraintSystem {
public:
  ConstraintSystem() : NumVars(0), Ineqs(1), Eqs(1) {}
  explicit ConstraintSystem(unsigned NumVars)
      : NumVars(NumVars), Ineqs(NumVars + 1), Eqs(NumVars + 1) {}

  unsigned numVars() const { return NumVars; }
  unsigned numIneqs() const { return Ineqs.numRows(); }
  unsigned numEqs() const { return Eqs.numRows(); }

  const IntMatrix &ineqs() const { return Ineqs; }
  const IntMatrix &eqs() const { return Eqs; }

  /// Adds the inequality Row . (x, 1) >= 0.
  void addIneq(std::vector<BigInt> Row);
  /// Adds the equality Row . (x, 1) == 0.
  void addEq(std::vector<BigInt> Row);
  /// Convenience: adds an (in)equality from int64 literals.
  void addIneq(std::initializer_list<long long> Row);
  void addEq(std::initializer_list<long long> Row);

  /// Adds Lower <= x_Var (i.e. x_Var - Lower >= 0).
  void addLowerBound(unsigned Var, long long Lower);
  /// Adds x_Var <= Upper.
  void addUpperBound(unsigned Var, long long Upper);

  /// Conjunction of two systems over the same variable space.
  static ConstraintSystem intersection(const ConstraintSystem &A,
                                       const ConstraintSystem &B);
  /// Appends all constraints of Other (same variable count) to this system.
  void append(const ConstraintSystem &Other);

  /// Inserts Count fresh unconstrained variables at position Pos.
  void insertDims(unsigned Pos, unsigned Count);

  /// True iff the system has no integer solution (exact). A solve-budget
  /// abort answers false (conservatively non-empty); callers that must
  /// distinguish the abort use integerFeasibility().
  bool isIntegerEmpty() const;

  /// Tri-state integer feasibility (ilp::Feasibility::Unknown on a solve
  /// budget abort instead of the conservative answer).
  ilp::Feasibility integerFeasibility() const;

  /// True iff every integer point of this system satisfies Row.(x,1) >= 0.
  bool impliesIneq(const std::vector<BigInt> &Row) const;

  /// Eliminates variable Var by exact equality substitution when an equality
  /// involves it, otherwise by Fourier-Motzkin. The variable space shrinks
  /// by one (columns shift left). The result is the rational shadow, a
  /// superset of the integer shadow - always safe for the uses in this code
  /// base (bounds enumeration and dependence-test preprocessing).
  void eliminateVar(unsigned Var);

  /// Projects onto all variables except [Pos, Pos+Count).
  void projectOut(unsigned Pos, unsigned Count);

  /// Drops constraints that are implied by Context (and the remaining
  /// constraints of this system). Context has the same variable count.
  void gist(const ConstraintSystem &Context);

  /// Removes constraints implied by the remaining ones (integer-exact
  /// implication test; quadratic in the number of rows).
  void removeRedundant();

  /// Cheap cleanup: gcd-normalizes rows (tightening inequality constants),
  /// drops duplicates and trivially true rows. With inline pruning enabled
  /// (the default) inequalities with identical coefficient vectors are also
  /// collapsed to the tightest constant (syntactic dominance). Returns false
  /// if a trivially false row was found (system is empty).
  bool normalize();

  /// Toggles the cheap syntactic dominance pruning applied during
  /// normalize/eliminateVar/projectOut; returns the previous setting. Only
  /// meant for benchmarking the pruning itself — disabling it never changes
  /// results, just leaves more redundant rows around.
  static bool setInlinePruning(bool Enabled);

  /// Renders the system for debugging; Names may name a prefix of the dims.
  std::string toString(const std::vector<std::string> &Names = {}) const;

private:
  unsigned NumVars;
  IntMatrix Ineqs;
  IntMatrix Eqs;
};

} // namespace pluto

#endif // PLUTOPP_POLY_CONSTRAINTSYSTEM_H
