//===- poly/ConstraintSystem.cpp - Integer polyhedra ----------------------===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
//===----------------------------------------------------------------------===//

#include "poly/ConstraintSystem.h"

#include "ilp/LexMin.h"
#include "observe/PassStats.h"
#include "support/Budget.h"
#include "support/LinearAlgebra.h"

#include <algorithm>
#include <unordered_map>

using namespace pluto;

namespace {

/// Hash for constraint rows (vectors of BigInt). BigInt::hash is cheap for
/// inline (int64) values, which is the common case.
struct RowVecHash {
  size_t operator()(const std::vector<BigInt> &Row) const {
    size_t H = 0x9e3779b97f4a7c15ULL ^ Row.size();
    for (const BigInt &V : Row)
      H = (H * 0x100000001b3ULL) ^ V.hash();
    return H;
  }
};

using RowIndexMap =
    std::unordered_map<std::vector<BigInt>, unsigned, RowVecHash>;

/// When true (default), inequality rows with identical coefficient vectors
/// are collapsed to the tightest constant during normalize/eliminateVar/
/// projectOut. Flipped only by substrate benchmarks.
bool InlinePruningEnabled = true;

} // namespace

bool ConstraintSystem::setInlinePruning(bool Enabled) {
  bool Prev = InlinePruningEnabled;
  InlinePruningEnabled = Enabled;
  return Prev;
}

void ConstraintSystem::addIneq(std::vector<BigInt> Row) {
  assert(Row.size() == NumVars + 1 && "constraint width mismatch");
  Ineqs.addRow(std::move(Row));
}

void ConstraintSystem::addEq(std::vector<BigInt> Row) {
  assert(Row.size() == NumVars + 1 && "constraint width mismatch");
  Eqs.addRow(std::move(Row));
}

void ConstraintSystem::addIneq(std::initializer_list<long long> Row) {
  std::vector<BigInt> R;
  R.reserve(Row.size());
  for (long long V : Row)
    R.push_back(BigInt(V));
  addIneq(std::move(R));
}

void ConstraintSystem::addEq(std::initializer_list<long long> Row) {
  std::vector<BigInt> R;
  R.reserve(Row.size());
  for (long long V : Row)
    R.push_back(BigInt(V));
  addEq(std::move(R));
}

void ConstraintSystem::addLowerBound(unsigned Var, long long Lower) {
  assert(Var < NumVars);
  std::vector<BigInt> Row(NumVars + 1, BigInt(0));
  Row[Var] = BigInt(1);
  Row[NumVars] = BigInt(-Lower);
  addIneq(std::move(Row));
}

void ConstraintSystem::addUpperBound(unsigned Var, long long Upper) {
  assert(Var < NumVars);
  std::vector<BigInt> Row(NumVars + 1, BigInt(0));
  Row[Var] = BigInt(-1);
  Row[NumVars] = BigInt(Upper);
  addIneq(std::move(Row));
}

ConstraintSystem ConstraintSystem::intersection(const ConstraintSystem &A,
                                                const ConstraintSystem &B) {
  assert(A.NumVars == B.NumVars && "intersection dimension mismatch");
  ConstraintSystem R = A;
  R.append(B);
  return R;
}

void ConstraintSystem::append(const ConstraintSystem &Other) {
  assert(NumVars == Other.NumVars && "append dimension mismatch");
  for (unsigned I = 0; I < Other.Ineqs.numRows(); ++I)
    Ineqs.addRow(Other.Ineqs.row(I));
  for (unsigned I = 0; I < Other.Eqs.numRows(); ++I)
    Eqs.addRow(Other.Eqs.row(I));
}

void ConstraintSystem::insertDims(unsigned Pos, unsigned Count) {
  assert(Pos <= NumVars && "insert position out of range");
  Ineqs.insertZeroColumns(Pos, Count);
  Eqs.insertZeroColumns(Pos, Count);
  NumVars += Count;
}

bool ConstraintSystem::isIntegerEmpty() const {
  return integerFeasibility() == ilp::Feasibility::Empty;
}

ilp::Feasibility ConstraintSystem::integerFeasibility() const {
  count(Counter::EmptinessTests);
  return ilp::integerFeasibility(Ineqs, Eqs, NumVars);
}

bool ConstraintSystem::impliesIneq(const std::vector<BigInt> &Row) const {
  count(Counter::RedundancyChecks);
  assert(Row.size() == NumVars + 1 && "constraint width mismatch");
  // Implied iff (this AND not Row) is empty; not(a.x + c >= 0) over the
  // integers is -a.x - c - 1 >= 0.
  ConstraintSystem Neg = *this;
  std::vector<BigInt> NegRow(NumVars + 1);
  for (unsigned I = 0; I <= NumVars; ++I)
    NegRow[I] = -Row[I];
  NegRow[NumVars] -= BigInt(1);
  Neg.addIneq(std::move(NegRow));
  return Neg.isIntegerEmpty();
}

/// Divides an inequality row by the gcd of its variable coefficients,
/// tightening the constant with a floor (integer-exact strengthening).
static void tightenIneq(std::vector<BigInt> &Row) {
  unsigned N = static_cast<unsigned>(Row.size()) - 1;
  BigInt G(0);
  for (unsigned I = 0; I < N; ++I)
    G = BigInt::gcd(G, Row[I]);
  if (G.isZero() || G.isOne())
    return;
  for (unsigned I = 0; I < N; ++I)
    Row[I] = Row[I].divExact(G);
  Row[N] = Row[N].floorDiv(G);
}

bool ConstraintSystem::normalize() {
  // Equalities: gcd-normalize; a row 0 == c with c != 0 is a contradiction.
  IntMatrix NewEqs(NumVars + 1);
  RowIndexMap SeenEq;
  for (unsigned R = 0; R < Eqs.numRows(); ++R) {
    std::vector<BigInt> Row = Eqs.row(R);
    BigInt G(0);
    for (unsigned I = 0; I < NumVars; ++I)
      G = BigInt::gcd(G, Row[I]);
    if (G.isZero()) {
      if (!Row[NumVars].isZero())
        return false;
      continue;
    }
    // If the gcd of coefficients does not divide the constant, no integer
    // solution exists.
    if (!(Row[NumVars] % G).isZero())
      return false;
    for (BigInt &V : Row)
      V = V.divExact(G);
    // Canonicalize sign: first nonzero coefficient positive.
    for (unsigned I = 0; I < NumVars; ++I) {
      if (Row[I].isZero())
        continue;
      if (Row[I].isNegative())
        for (BigInt &V : Row)
          V = -V;
      break;
    }
    if (SeenEq.try_emplace(Row, NewEqs.numRows()).second)
      NewEqs.addRow(std::move(Row));
  }
  Eqs = std::move(NewEqs);

  // Inequalities: tighten, drop trivially true rows, and deduplicate. With
  // inline pruning, rows sharing a coefficient vector collapse to the
  // tightest constant (for a.x + c >= 0 the smallest c dominates).
  IntMatrix NewIneqs(NumVars + 1);
  RowIndexMap Seen;
  bool Contradiction = false;
  for (unsigned R = 0; R < Ineqs.numRows(); ++R) {
    std::vector<BigInt> Row = Ineqs.row(R);
    tightenIneq(Row);
    bool AllZero = true;
    for (unsigned I = 0; I < NumVars; ++I)
      AllZero &= Row[I].isZero();
    if (AllZero) {
      if (Row[NumVars].isNegative())
        Contradiction = true;
      continue;
    }
    if (InlinePruningEnabled) {
      std::vector<BigInt> Key(Row.begin(), Row.end() - 1);
      auto [It, Inserted] = Seen.try_emplace(std::move(Key),
                                             NewIneqs.numRows());
      if (Inserted) {
        NewIneqs.addRow(std::move(Row));
      } else if (Row[NumVars] < NewIneqs.row(It->second)[NumVars]) {
        NewIneqs.row(It->second) = std::move(Row);
      }
    } else if (Seen.try_emplace(Row, NewIneqs.numRows()).second) {
      NewIneqs.addRow(std::move(Row));
    }
  }
  Ineqs = std::move(NewIneqs);
  return !Contradiction;
}

void ConstraintSystem::eliminateVar(unsigned Var) {
  assert(Var < NumVars && "eliminating variable out of range");

  auto dropColumn = [&](std::vector<BigInt> Row) {
    Row.erase(Row.begin() + Var);
    return Row;
  };

  // Prefer exact substitution using an equality that involves Var (pick the
  // one with the smallest absolute coefficient to limit growth).
  int EqIdx = -1;
  for (unsigned R = 0; R < Eqs.numRows(); ++R) {
    if (Eqs(R, Var).isZero())
      continue;
    if (EqIdx < 0 ||
        Eqs(R, Var).abs() < Eqs(static_cast<unsigned>(EqIdx), Var).abs())
      EqIdx = static_cast<int>(R);
  }

  IntMatrix NewIneqs(NumVars);
  IntMatrix NewEqs(NumVars);

  if (EqIdx >= 0) {
    const std::vector<BigInt> &E = Eqs.row(static_cast<unsigned>(EqIdx));
    BigInt D = E[Var];
    auto substitute = [&](const std::vector<BigInt> &Row) {
      // Row' = |D| * Row - sign(D) * Row[Var] * E  (positive multiple of Row
      // plus a multiple of the equality; legal for both row kinds).
      std::vector<BigInt> R(NumVars + 1);
      BigInt AbsD = D.abs();
      BigInt S = D.isNegative() ? BigInt(-1) : BigInt(1);
      for (unsigned C = 0; C <= NumVars; ++C)
        R[C] = AbsD * Row[C] - S * Row[Var] * E[C];
      assert(R[Var].isZero() && "substitution failed to eliminate variable");
      normalizeByGcd(R);
      return dropColumn(std::move(R));
    };
    for (unsigned R = 0; R < Ineqs.numRows(); ++R)
      NewIneqs.addRow(substitute(Ineqs.row(R)));
    for (unsigned R = 0; R < Eqs.numRows(); ++R) {
      if (R == static_cast<unsigned>(EqIdx))
        continue;
      NewEqs.addRow(substitute(Eqs.row(R)));
    }
    Ineqs = std::move(NewIneqs);
    Eqs = std::move(NewEqs);
    --NumVars;
    normalize();
    return;
  }

  // No equality: classic Fourier-Motzkin on the inequalities. Any equality
  // rows here do not involve Var, so they pass through unchanged. Derived
  // rows are deduplicated (and, with inline pruning, dominance-collapsed)
  // as they are generated — FM produces |Lower| * |Upper| combinations and
  // many coincide after gcd normalization.
  std::vector<unsigned> Lower, Upper, None;
  for (unsigned R = 0; R < Ineqs.numRows(); ++R) {
    const BigInt &C = Ineqs(R, Var);
    if (C.isPositive())
      Lower.push_back(R); // c > 0: row gives a lower bound on Var.
    else if (C.isNegative())
      Upper.push_back(R);
    else
      None.push_back(R);
  }
  RowIndexMap Seen;
  auto addDedup = [&](std::vector<BigInt> Row) {
    if (InlinePruningEnabled) {
      std::vector<BigInt> Key(Row.begin(), Row.end() - 1);
      auto [It, Inserted] = Seen.try_emplace(std::move(Key),
                                             NewIneqs.numRows());
      if (Inserted)
        NewIneqs.addRow(std::move(Row));
      else if (Row[NumVars - 1] < NewIneqs.row(It->second)[NumVars - 1])
        NewIneqs.row(It->second) = std::move(Row);
    } else if (Seen.try_emplace(Row, NewIneqs.numRows()).second) {
      NewIneqs.addRow(std::move(Row));
    }
  };
  for (unsigned R : None)
    addDedup(dropColumn(Ineqs.row(R)));
  // FM generates |Lower| * |Upper| rows; bulk-charge the compile budget one
  // inner row's worth per outer iteration and bail out on exhaustion (the
  // partially-built system is garbage, which the stage driver discards).
  uint64_t FmRowBytes = static_cast<uint64_t>(NumVars + 1) * sizeof(BigInt);
  for (unsigned L : Lower) {
    if (!budgetCharge(Upper.size()) ||
        !budgetChargeMemory(Upper.size() * FmRowBytes))
      break;
    for (unsigned U : Upper) {
      const std::vector<BigInt> &RL = Ineqs.row(L);
      const std::vector<BigInt> &RU = Ineqs.row(U);
      BigInt P = RL[Var];   // > 0
      BigInt Q = -RU[Var];  // > 0
      std::vector<BigInt> R(NumVars + 1);
      for (unsigned C = 0; C <= NumVars; ++C)
        R[C] = Q * RL[C] + P * RU[C];
      assert(R[Var].isZero() && "FM combination failed");
      normalizeByGcd(R);
      addDedup(dropColumn(std::move(R)));
    }
  }
  for (unsigned R = 0; R < Eqs.numRows(); ++R)
    NewEqs.addRow(dropColumn(Eqs.row(R)));
  if (activeStats()) {
    uint64_t Generated = static_cast<uint64_t>(None.size()) +
                         static_cast<uint64_t>(Lower.size()) * Upper.size();
    count(Counter::FmEliminations);
    count(Counter::FmRowsGenerated, Generated);
    count(Counter::FmRowsPruned, Generated - NewIneqs.numRows());
  }
  Ineqs = std::move(NewIneqs);
  Eqs = std::move(NewEqs);
  --NumVars;
  normalize();
}

void ConstraintSystem::projectOut(unsigned Pos, unsigned Count) {
  assert(Pos + Count <= NumVars && "projection range out of bounds");
  if (Count == 0)
    return;

  // Phase 1: exact equality substitutions. While some equality involves a
  // target variable, use it to eliminate that variable (no row growth).
  std::vector<bool> IsTarget(NumVars, false);
  for (unsigned I = 0; I < Count; ++I)
    IsTarget[Pos + I] = true;
  for (;;) {
    int Var = -1;
    for (unsigned V = 0; V < NumVars && Var < 0; ++V) {
      if (!IsTarget[V])
        continue;
      for (unsigned R = 0; R < Eqs.numRows(); ++R)
        if (!Eqs(R, V).isZero()) {
          Var = static_cast<int>(V);
          break;
        }
    }
    if (Var < 0)
      break;
    eliminateVar(static_cast<unsigned>(Var));
    IsTarget.erase(IsTarget.begin() + Var);
  }

  // Phase 2: batch Fourier-Motzkin with Imbert's acceleration. Each row
  // carries the set of original inequality indices it descends from; after
  // eliminating p variables, any irredundant derived row has at most p + 1
  // ancestors (Imbert/Chernikov), so larger combinations are dropped. This
  // keeps the Farkas-multiplier eliminations polynomial in practice.
  std::vector<unsigned> Targets;
  for (unsigned V = 0; V < NumVars; ++V)
    if (IsTarget[V])
      Targets.push_back(V);
  if (!Targets.empty()) {
    struct FmRow {
      std::vector<BigInt> Coef;
      std::vector<unsigned> Anc; // Sorted ancestor indices.
    };
    std::vector<FmRow> Rows;
    for (unsigned R = 0; R < Ineqs.numRows(); ++R)
      Rows.push_back({Ineqs.row(R), {R}});

    auto mergeAnc = [](const std::vector<unsigned> &A,
                       const std::vector<unsigned> &B) {
      std::vector<unsigned> M;
      std::set_union(A.begin(), A.end(), B.begin(), B.end(),
                     std::back_inserter(M));
      return M;
    };

    std::vector<bool> Remaining(NumVars, false);
    for (unsigned V : Targets)
      Remaining[V] = true;
    unsigned P = 0;
    for (unsigned Step = 0; Step < Targets.size(); ++Step) {
      // Pick the remaining target with the lowest pos*neg growth.
      int Best = -1;
      size_t BestCost = 0;
      for (unsigned V = 0; V < NumVars; ++V) {
        if (!Remaining[V])
          continue;
        size_t NPos = 0, NNeg = 0;
        for (const FmRow &R : Rows) {
          NPos += R.Coef[V].isPositive();
          NNeg += R.Coef[V].isNegative();
        }
        size_t Cost = NPos * NNeg;
        if (Best < 0 || Cost < BestCost) {
          Best = static_cast<int>(V);
          BestCost = Cost;
        }
      }
      unsigned V = static_cast<unsigned>(Best);
      Remaining[V] = false;
      ++P;

      std::vector<FmRow> Lower, Upper, Next;
      for (FmRow &R : Rows) {
        if (R.Coef[V].isPositive())
          Lower.push_back(std::move(R));
        else if (R.Coef[V].isNegative())
          Upper.push_back(std::move(R));
        else
          Next.push_back(std::move(R));
      }
      // Key rows by their coefficient vector (constant excluded when inline
      // pruning is on, so dominated rows collapse to the tightest constant).
      auto keyOf = [&](const std::vector<BigInt> &Coef) {
        if (InlinePruningEnabled)
          return std::vector<BigInt>(Coef.begin(), Coef.end() - 1);
        return Coef;
      };
      // Duplicate rows keep the SMALLEST ancestor set so the pruning rule
      // never discards the cheapest derivation of an irredundant row.
      std::unordered_map<std::vector<BigInt>, size_t, RowVecHash> Seen;
      for (size_t I = 0; I < Next.size(); ++I) {
        auto [It, Inserted] = Seen.try_emplace(keyOf(Next[I].Coef), I);
        if (!Inserted && Next[I].Coef[NumVars] <
                             Next[It->second].Coef[NumVars]) {
          // Tighter constant on an equal coefficient vector dominates.
          It->second = I;
        }
      }
      size_t PassThrough = Next.size();
      uint64_t FmRowBytes =
          static_cast<uint64_t>(NumVars + 1) * sizeof(BigInt);
      for (const FmRow &L : Lower) {
        if (!budgetCharge(Upper.size()) ||
            !budgetChargeMemory(Upper.size() * FmRowBytes))
          break;
        for (const FmRow &U : Upper) {
          std::vector<unsigned> Anc = mergeAnc(L.Anc, U.Anc);
          if (Anc.size() > P + 1)
            continue; // Imbert/Chernikov: necessarily redundant.
          BigInt PC = L.Coef[V];
          BigInt NC = -U.Coef[V];
          std::vector<BigInt> Coef(NumVars + 1);
          bool AllZero = true;
          for (unsigned C = 0; C <= NumVars; ++C) {
            Coef[C] = NC * L.Coef[C] + PC * U.Coef[C];
            if (C < NumVars && !Coef[C].isZero())
              AllZero = false;
          }
          normalizeByGcd(Coef);
          if (AllZero)
            continue; // Trivial (or contradiction caught by normalize()).
          auto [It, Inserted] = Seen.try_emplace(keyOf(Coef), Next.size());
          if (!Inserted) {
            FmRow &Old = Next[It->second];
            if (InlinePruningEnabled && Coef[NumVars] < Old.Coef[NumVars]) {
              // Strictly tighter: replace the dominated row outright.
              Old.Coef = std::move(Coef);
              Old.Anc = std::move(Anc);
            } else if (Coef[NumVars] == Old.Coef[NumVars] &&
                       Anc.size() < Old.Anc.size()) {
              Old.Anc = std::move(Anc);
            }
            continue;
          }
          Next.push_back({std::move(Coef), std::move(Anc)});
        }
      }
      if (activeStats()) {
        uint64_t Generated =
            static_cast<uint64_t>(Lower.size()) * Upper.size();
        count(Counter::FmEliminations);
        count(Counter::FmRowsGenerated, Generated);
        count(Counter::FmRowsPruned,
              Generated - (Next.size() - PassThrough));
      }
      Rows = std::move(Next);
      if (budgetExhausted()) {
        // Bail with no rows at all (a garbage universe system): every
        // remaining target column is then trivially zero, so the
        // column-drop epilogue below stays assert-clean.
        Rows.clear();
        break;
      }
    }
    IntMatrix NewIneqs(NumVars + 1);
    for (FmRow &R : Rows)
      NewIneqs.addRow(std::move(R.Coef));
    Ineqs = std::move(NewIneqs);
  }

  // Drop the (now unconstrained) target columns, highest first.
  for (unsigned I = static_cast<unsigned>(Targets.size()); I-- > 0;) {
    unsigned V = Targets[I];
    // All rows have zero coefficients on V at this point.
    IntMatrix NI(NumVars), NE(NumVars);
    auto drop = [&](std::vector<BigInt> Row) {
      assert(Row[V].isZero() && "column not eliminated");
      Row.erase(Row.begin() + V);
      return Row;
    };
    for (unsigned R = 0; R < Ineqs.numRows(); ++R)
      NI.addRow(drop(Ineqs.row(R)));
    for (unsigned R = 0; R < Eqs.numRows(); ++R)
      NE.addRow(drop(Eqs.row(R)));
    Ineqs = std::move(NI);
    Eqs = std::move(NE);
    --NumVars;
  }
  normalize();
}

void ConstraintSystem::gist(const ConstraintSystem &Context) {
  assert(NumVars == Context.NumVars && "gist dimension mismatch");
  // Iterate over inequality rows; drop a row if Context plus the remaining
  // rows imply it. Equalities are kept (they carry exact information the
  // code generator needs).
  for (unsigned R = 0; R < Ineqs.numRows();) {
    std::vector<BigInt> Row = Ineqs.row(R);
    IntMatrix Rest(NumVars + 1);
    for (unsigned I = 0; I < Ineqs.numRows(); ++I)
      if (I != R)
        Rest.addRow(Ineqs.row(I));
    ConstraintSystem Probe = Context;
    for (unsigned I = 0; I < Rest.numRows(); ++I)
      Probe.addIneq(Rest.row(I));
    for (unsigned I = 0; I < Eqs.numRows(); ++I)
      Probe.addEq(Eqs.row(I));
    if (Probe.impliesIneq(Row)) {
      Ineqs.removeRow(R);
      continue;
    }
    ++R;
  }
}

void ConstraintSystem::removeRedundant() {
  ConstraintSystem Empty(NumVars);
  gist(Empty);
}

std::string
ConstraintSystem::toString(const std::vector<std::string> &Names) const {
  auto term = [&](const BigInt &C, unsigned Var, bool &First) {
    if (C.isZero())
      return std::string();
    std::string Name = Var < Names.size()
                           ? Names[Var]
                           : "x" + std::to_string(Var);
    std::string S;
    if (C.isOne())
      S = First ? Name : " + " + Name;
    else if (C.isMinusOne())
      S = First ? "-" + Name : " - " + Name;
    else if (C.isPositive())
      S = (First ? "" : " + ") + C.toString() + Name;
    else
      S = (First ? "-" : " - ") + (-C).toString() + Name;
    First = false;
    return S;
  };
  auto rowStr = [&](const std::vector<BigInt> &Row, const char *Rel) {
    std::string S;
    bool First = true;
    for (unsigned I = 0; I < NumVars; ++I)
      S += term(Row[I], I, First);
    const BigInt &K = Row[NumVars];
    if (!K.isZero() || First) {
      if (First)
        S += K.toString();
      else if (K.isPositive())
        S += " + " + K.toString();
      else
        S += " - " + (-K).toString();
    }
    return S + " " + Rel + " 0";
  };
  std::string S;
  for (unsigned R = 0; R < Eqs.numRows(); ++R)
    S += rowStr(Eqs.row(R), "==") + "\n";
  for (unsigned R = 0; R < Ineqs.numRows(); ++R)
    S += rowStr(Ineqs.row(R), ">=") + "\n";
  return S;
}
