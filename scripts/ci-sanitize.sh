#!/bin/sh
# CI job: build the whole tree with AddressSanitizer + UBSan and run the
# complete test suite under it. Any sanitizer report aborts the run
# (-fno-sanitize-recover=all) and fails the job.
#
# Usage: scripts/ci-sanitize.sh [build-dir]
set -eu

BUILD_DIR=${1:-build-sanitize}
SRC_DIR=$(dirname "$0")/..

cmake -B "$BUILD_DIR" -S "$SRC_DIR" -DPLUTOPP_SANITIZE=ON
cmake --build "$BUILD_DIR" -j "$(nproc)"

# abort_on_error makes ASan failures hard test failures under ctest;
# detect_leaks covers the dlopen/JIT paths too.
ASAN_OPTIONS=abort_on_error=1:detect_leaks=1 \
UBSAN_OPTIONS=print_stacktrace=1 \
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

# Smoke-run the plutopp CLI under the same sanitizers: full pipeline with
# diagnostics on (exercises the observe counters/trace allocation paths)
# and off, plus the error path. Output is discarded; a sanitizer report or
# unexpected exit status fails the job.
CLI="$BUILD_DIR/tools/plutopp"
ASAN_OPTIONS=abort_on_error=1:detect_leaks=1 \
UBSAN_OPTIONS=print_stacktrace=1 \
  "$CLI" --tile --parallel --report=json "$SRC_DIR/examples/matmul.c" \
    > /dev/null 2> /dev/null
ASAN_OPTIONS=abort_on_error=1:detect_leaks=1 \
UBSAN_OPTIONS=print_stacktrace=1 \
  "$CLI" --no-tile --no-vectorize --report "$SRC_DIR/examples/jacobi1d.c" \
    > /dev/null 2> /dev/null
if ASAN_OPTIONS=abort_on_error=1 "$CLI" /nonexistent.c > /dev/null 2>&1; then
  echo "ci-sanitize: plutopp accepted a nonexistent input" >&2
  exit 1
fi
echo "ci-sanitize: CLI smoke-run OK"
