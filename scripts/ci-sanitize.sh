#!/bin/sh
# CI job: build the whole tree with AddressSanitizer + UBSan and run the
# complete test suite under it. Any sanitizer report aborts the run
# (-fno-sanitize-recover=all) and fails the job.
#
# Usage: scripts/ci-sanitize.sh [build-dir]
set -eu

BUILD_DIR=${1:-build-sanitize}
SRC_DIR=$(dirname "$0")/..

cmake -B "$BUILD_DIR" -S "$SRC_DIR" -DPLUTOPP_SANITIZE=ON
cmake --build "$BUILD_DIR" -j "$(nproc)"

# abort_on_error makes ASan failures hard test failures under ctest;
# detect_leaks covers the dlopen/JIT paths too.
ASAN_OPTIONS=abort_on_error=1:detect_leaks=1 \
UBSAN_OPTIONS=print_stacktrace=1 \
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

# Smoke-run the plutopp CLI under the same sanitizers: full pipeline with
# diagnostics on (exercises the observe counters/trace allocation paths)
# and off, plus the error path. Output is discarded; a sanitizer report or
# unexpected exit status fails the job.
CLI="$BUILD_DIR/tools/plutopp"
ASAN_OPTIONS=abort_on_error=1:detect_leaks=1 \
UBSAN_OPTIONS=print_stacktrace=1 \
  "$CLI" --tile --parallel --report=json "$SRC_DIR/examples/matmul.c" \
    > /dev/null 2> /dev/null
ASAN_OPTIONS=abort_on_error=1:detect_leaks=1 \
UBSAN_OPTIONS=print_stacktrace=1 \
  "$CLI" --no-tile --no-vectorize --report "$SRC_DIR/examples/jacobi1d.c" \
    > /dev/null 2> /dev/null
if ASAN_OPTIONS=abort_on_error=1 "$CLI" /nonexistent.c > /dev/null 2>&1; then
  echo "ci-sanitize: plutopp accepted a nonexistent input" >&2
  exit 1
fi
if ASAN_OPTIONS=abort_on_error=1 "$CLI" --tile-size=0 \
    "$SRC_DIR/examples/matmul.c" > /dev/null 2>&1; then
  echo "ci-sanitize: plutopp accepted --tile-size=0" >&2
  exit 1
fi

# Service-layer smoke run: the whole examples/ corpus as a concurrent
# batch (--jobs=4), twice against one persistent --cache-dir. The first
# run exercises the thread pool + cold compiles + disk writes, the second
# the concurrent disk/memory hit paths; both run under ASan+UBSan, and the
# two runs' outputs must be byte-identical (the cache determinism
# contract).
CACHE_DIR="$BUILD_DIR/ci-cache"
OUT1="$BUILD_DIR/ci-out1"
OUT2="$BUILD_DIR/ci-out2"
rm -rf "$CACHE_DIR" "$OUT1" "$OUT2"
for OUT in "$OUT1" "$OUT2"; do
  ASAN_OPTIONS=abort_on_error=1:detect_leaks=1 \
  UBSAN_OPTIONS=print_stacktrace=1 \
    "$CLI" --jobs=4 --cache-dir="$CACHE_DIR" --out-dir="$OUT" \
      "$SRC_DIR"/examples/*.c > /dev/null
done
if ! diff -r "$OUT1" "$OUT2" > /dev/null; then
  echo "ci-sanitize: warm-cache output differs from cold compile" >&2
  exit 1
fi
rm -rf "$CACHE_DIR" "$OUT1" "$OUT2"
echo "ci-sanitize: CLI + service smoke-run OK"

# Scheduler-scaling smoke run: a deterministic 25-statement stress program
# (tools/stressgen) compiled with the scaling fast paths on and off, both
# under ASan+UBSan. The two emitted C files must be byte-identical - the
# fast paths' equivalence contract, checked here on the sanitizer build on
# top of the unit-test coverage.
GEN="$BUILD_DIR/tools/stressgen"
STRESS="$BUILD_DIR/ci-stress25.c"
"$GEN" 25 1 > "$STRESS"
ASAN_OPTIONS=abort_on_error=1:detect_leaks=1 \
UBSAN_OPTIONS=print_stacktrace=1 \
  "$CLI" --fast-schedule "$STRESS" > "$BUILD_DIR/ci-stress25-fast.c" \
    2> /dev/null
ASAN_OPTIONS=abort_on_error=1:detect_leaks=1 \
UBSAN_OPTIONS=print_stacktrace=1 \
  "$CLI" --no-fast-schedule "$STRESS" > "$BUILD_DIR/ci-stress25-exact.c" \
    2> /dev/null
if ! diff "$BUILD_DIR/ci-stress25-fast.c" "$BUILD_DIR/ci-stress25-exact.c" \
    > /dev/null; then
  echo "ci-sanitize: fast-path transform differs from exact on stress25" >&2
  exit 1
fi
rm -f "$STRESS" "$BUILD_DIR/ci-stress25-fast.c" "$BUILD_DIR/ci-stress25-exact.c"
echo "ci-sanitize: scheduler fast-path equivalence OK"

# Frontend diagnostics smoke run: every file of the malformed-input corpus
# must be rejected with exit code 2 (the bad-input class) under the
# sanitizers - multi-error recovery walks the recovery/synchronize paths
# that ASan is most likely to catch out of bounds.
for BAD in "$SRC_DIR"/tests/corpus/*.c; do
  if ASAN_OPTIONS=abort_on_error=1:detect_leaks=1 \
     UBSAN_OPTIONS=print_stacktrace=1 \
       "$CLI" "$BAD" > /dev/null 2>&1; then
    echo "ci-sanitize: plutopp accepted malformed input $BAD" >&2
    exit 1
  fi
  STATUS=0
  ASAN_OPTIONS=abort_on_error=1:detect_leaks=1 \
  UBSAN_OPTIONS=print_stacktrace=1 \
    "$CLI" "$BAD" > /dev/null 2>&1 || STATUS=$?
  if [ "$STATUS" -ne 2 ]; then
    echo "ci-sanitize: expected exit 2 for $BAD, got $STATUS" >&2
    exit 1
  fi
done
echo "ci-sanitize: malformed-input corpus rejected with exit 2 OK"

# Reduction kernel smoke run: the dot product must come back parallel
# with a reduction clause on its pragma.
RED_OUT="$BUILD_DIR/ci-dotprod.c"
ASAN_OPTIONS=abort_on_error=1:detect_leaks=1 \
UBSAN_OPTIONS=print_stacktrace=1 \
  "$CLI" "$SRC_DIR/examples/dotprod.c" > "$RED_OUT" 2> /dev/null
if ! grep -q 'pragma omp parallel for' "$RED_OUT" ||
   ! grep -q 'reduction(+:s)' "$RED_OUT"; then
  echo "ci-sanitize: dot product lost its reduction pragma" >&2
  exit 1
fi
rm -f "$RED_OUT"
echo "ci-sanitize: reduction parallelization OK"

# Serving-layer soak: plutod under the sanitizers, ~55 mixed requests from
# plutoctl (good kernels - twice, so the second pass is all cache hits -
# plus the whole malformed corpus and ping/metrics probes), then a metrics
# scrape and a SIGTERM drain. Fails on any sanitizer report, a dropped
# request (daemon exits non-zero when accepted != completed), or a metrics
# document that disagrees with the traffic.
PLUTOD="$BUILD_DIR/tools/plutod"
PLUTOCTL="$BUILD_DIR/tools/plutoctl"
SOCK="$BUILD_DIR/ci-plutod.sock"
DLOG="$BUILD_DIR/ci-plutod.log"
rm -f "$SOCK" "$DLOG"
ASAN_OPTIONS=abort_on_error=1:detect_leaks=1 \
UBSAN_OPTIONS=print_stacktrace=1 \
  "$PLUTOD" --socket="$SOCK" --workers=4 --shards=8 --quiet \
    2> "$DLOG" &
DAEMON_PID=$!
# Wait for the socket to answer a ping.
TRIES=0
until "$PLUTOCTL" --socket="$SOCK" --ping > /dev/null 2>&1; do
  TRIES=$((TRIES + 1))
  if [ "$TRIES" -ge 50 ]; then
    echo "ci-sanitize: plutod never answered a ping" >&2
    cat "$DLOG" >&2
    kill "$DAEMON_PID" 2> /dev/null || true
    exit 1
  fi
  sleep 0.1
done

# Good traffic, 6 passes over examples/ (36 compile requests): the first
# pass is cold, the rest pure cache hits, and from pass 3 on the passes
# run concurrently to exercise the worker pool + sharded cache under
# racing clients. plutoctl output must match plutopp's byte for byte.
SERVED="$BUILD_DIR/ci-plutod-served.c"
LOCAL="$BUILD_DIR/ci-plutod-local.c"
"$CLI" "$SRC_DIR"/examples/*.c > "$LOCAL" 2> /dev/null
for PASS in cold warm; do
  "$PLUTOCTL" --socket="$SOCK" "$SRC_DIR"/examples/*.c > "$SERVED"
  if ! diff "$SERVED" "$LOCAL" > /dev/null; then
    echo "ci-sanitize: plutoctl ($PASS) output differs from plutopp" >&2
    kill "$DAEMON_PID" 2> /dev/null || true
    exit 1
  fi
done
CTL_PIDS=""
for I in 1 2 3 4; do
  "$PLUTOCTL" --socket="$SOCK" "$SRC_DIR"/examples/*.c \
    > "$SERVED.$I" &
  CTL_PIDS="$CTL_PIDS $!"
done
for PID in $CTL_PIDS; do
  # The daemon stays up as its own background job; wait only for clients.
  wait "$PID"
done
for I in 1 2 3 4; do
  if ! diff "$SERVED.$I" "$LOCAL" > /dev/null; then
    echo "ci-sanitize: concurrent plutoctl pass $I differs from plutopp" >&2
    kill "$DAEMON_PID" 2> /dev/null || true
    exit 1
  fi
  rm -f "$SERVED.$I"
done
# Bad traffic (twice - the failure path must not poison the cache): every
# malformed-corpus file must come back source-error (client exit 2)
# without hurting the daemon.
for BAD in "$SRC_DIR"/tests/corpus/*.c "$SRC_DIR"/tests/corpus/*.c; do
  STATUS=0
  "$PLUTOCTL" --socket="$SOCK" "$BAD" > /dev/null 2>&1 || STATUS=$?
  if [ "$STATUS" -ne 2 ]; then
    echo "ci-sanitize: plutod gave exit $STATUS for malformed $BAD" >&2
    kill "$DAEMON_PID" 2> /dev/null || true
    exit 1
  fi
done
# Metrics must balance: accepted == completed, and the document is the
# versioned report schema.
METRICS="$BUILD_DIR/ci-plutod-metrics.json"
"$PLUTOCTL" --socket="$SOCK" --metrics > "$METRICS"
for NEEDLE in '"schema":2' '"server"' '"cache"' '"latency_ms"'; do
  if ! grep -q "$NEEDLE" "$METRICS"; then
    echo "ci-sanitize: plutod metrics missing $NEEDLE" >&2
    kill "$DAEMON_PID" 2> /dev/null || true
    exit 1
  fi
done
ACCEPTED=$(sed -n 's/.*"requests_accepted":\([0-9]*\).*/\1/p' "$METRICS")
COMPLETED=$(sed -n 's/.*"requests_completed":\([0-9]*\).*/\1/p' "$METRICS")
if [ -z "$ACCEPTED" ] || [ "$ACCEPTED" != "$COMPLETED" ]; then
  echo "ci-sanitize: plutod dropped requests ($ACCEPTED accepted," \
       "$COMPLETED completed)" >&2
  kill "$DAEMON_PID" 2> /dev/null || true
  exit 1
fi
# Graceful drain: SIGTERM; the daemon exits 0 only when every accepted
# request was answered (and a sanitizer report would have aborted it).
kill -TERM "$DAEMON_PID"
if ! wait "$DAEMON_PID"; then
  echo "ci-sanitize: plutod drain failed" >&2
  cat "$DLOG" >&2
  exit 1
fi
rm -f "$SOCK" "$DLOG" "$SERVED" "$LOCAL" "$METRICS"
echo "ci-sanitize: plutod sanitizer soak OK"
