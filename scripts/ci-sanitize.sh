#!/bin/sh
# CI job: build the whole tree with AddressSanitizer + UBSan and run the
# complete test suite under it. Any sanitizer report aborts the run
# (-fno-sanitize-recover=all) and fails the job.
#
# Usage: scripts/ci-sanitize.sh [build-dir]
set -eu

BUILD_DIR=${1:-build-sanitize}
SRC_DIR=$(dirname "$0")/..

cmake -B "$BUILD_DIR" -S "$SRC_DIR" -DPLUTOPP_SANITIZE=ON
cmake --build "$BUILD_DIR" -j "$(nproc)"

# abort_on_error makes ASan failures hard test failures under ctest;
# detect_leaks covers the dlopen/JIT paths too.
ASAN_OPTIONS=abort_on_error=1:detect_leaks=1 \
UBSAN_OPTIONS=print_stacktrace=1 \
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

# Smoke-run the plutopp CLI under the same sanitizers: full pipeline with
# diagnostics on (exercises the observe counters/trace allocation paths)
# and off, plus the error path. Output is discarded; a sanitizer report or
# unexpected exit status fails the job.
CLI="$BUILD_DIR/tools/plutopp"
ASAN_OPTIONS=abort_on_error=1:detect_leaks=1 \
UBSAN_OPTIONS=print_stacktrace=1 \
  "$CLI" --tile --parallel --report=json "$SRC_DIR/examples/matmul.c" \
    > /dev/null 2> /dev/null
ASAN_OPTIONS=abort_on_error=1:detect_leaks=1 \
UBSAN_OPTIONS=print_stacktrace=1 \
  "$CLI" --no-tile --no-vectorize --report "$SRC_DIR/examples/jacobi1d.c" \
    > /dev/null 2> /dev/null
if ASAN_OPTIONS=abort_on_error=1 "$CLI" /nonexistent.c > /dev/null 2>&1; then
  echo "ci-sanitize: plutopp accepted a nonexistent input" >&2
  exit 1
fi
if ASAN_OPTIONS=abort_on_error=1 "$CLI" --tile-size=0 \
    "$SRC_DIR/examples/matmul.c" > /dev/null 2>&1; then
  echo "ci-sanitize: plutopp accepted --tile-size=0" >&2
  exit 1
fi

# Service-layer smoke run: the whole examples/ corpus as a concurrent
# batch (--jobs=4), twice against one persistent --cache-dir. The first
# run exercises the thread pool + cold compiles + disk writes, the second
# the concurrent disk/memory hit paths; both run under ASan+UBSan, and the
# two runs' outputs must be byte-identical (the cache determinism
# contract).
CACHE_DIR="$BUILD_DIR/ci-cache"
OUT1="$BUILD_DIR/ci-out1"
OUT2="$BUILD_DIR/ci-out2"
rm -rf "$CACHE_DIR" "$OUT1" "$OUT2"
for OUT in "$OUT1" "$OUT2"; do
  ASAN_OPTIONS=abort_on_error=1:detect_leaks=1 \
  UBSAN_OPTIONS=print_stacktrace=1 \
    "$CLI" --jobs=4 --cache-dir="$CACHE_DIR" --out-dir="$OUT" \
      "$SRC_DIR"/examples/*.c > /dev/null
done
if ! diff -r "$OUT1" "$OUT2" > /dev/null; then
  echo "ci-sanitize: warm-cache output differs from cold compile" >&2
  exit 1
fi
rm -rf "$CACHE_DIR" "$OUT1" "$OUT2"
echo "ci-sanitize: CLI + service smoke-run OK"

# Scheduler-scaling smoke run: a deterministic 25-statement stress program
# (tools/stressgen) compiled with the scaling fast paths on and off, both
# under ASan+UBSan. The two emitted C files must be byte-identical - the
# fast paths' equivalence contract, checked here on the sanitizer build on
# top of the unit-test coverage.
GEN="$BUILD_DIR/tools/stressgen"
STRESS="$BUILD_DIR/ci-stress25.c"
"$GEN" 25 1 > "$STRESS"
ASAN_OPTIONS=abort_on_error=1:detect_leaks=1 \
UBSAN_OPTIONS=print_stacktrace=1 \
  "$CLI" --fast-schedule "$STRESS" > "$BUILD_DIR/ci-stress25-fast.c" \
    2> /dev/null
ASAN_OPTIONS=abort_on_error=1:detect_leaks=1 \
UBSAN_OPTIONS=print_stacktrace=1 \
  "$CLI" --no-fast-schedule "$STRESS" > "$BUILD_DIR/ci-stress25-exact.c" \
    2> /dev/null
if ! diff "$BUILD_DIR/ci-stress25-fast.c" "$BUILD_DIR/ci-stress25-exact.c" \
    > /dev/null; then
  echo "ci-sanitize: fast-path transform differs from exact on stress25" >&2
  exit 1
fi
rm -f "$STRESS" "$BUILD_DIR/ci-stress25-fast.c" "$BUILD_DIR/ci-stress25-exact.c"
echo "ci-sanitize: scheduler fast-path equivalence OK"

# Frontend diagnostics smoke run: every file of the malformed-input corpus
# must be rejected with exit code 2 (the bad-input class) under the
# sanitizers - multi-error recovery walks the recovery/synchronize paths
# that ASan is most likely to catch out of bounds.
for BAD in "$SRC_DIR"/tests/corpus/*.c; do
  if ASAN_OPTIONS=abort_on_error=1:detect_leaks=1 \
     UBSAN_OPTIONS=print_stacktrace=1 \
       "$CLI" "$BAD" > /dev/null 2>&1; then
    echo "ci-sanitize: plutopp accepted malformed input $BAD" >&2
    exit 1
  fi
  STATUS=0
  ASAN_OPTIONS=abort_on_error=1:detect_leaks=1 \
  UBSAN_OPTIONS=print_stacktrace=1 \
    "$CLI" "$BAD" > /dev/null 2>&1 || STATUS=$?
  if [ "$STATUS" -ne 2 ]; then
    echo "ci-sanitize: expected exit 2 for $BAD, got $STATUS" >&2
    exit 1
  fi
done
echo "ci-sanitize: malformed-input corpus rejected with exit 2 OK"

# Reduction kernel smoke run: the dot product must come back parallel
# with a reduction clause on its pragma.
RED_OUT="$BUILD_DIR/ci-dotprod.c"
ASAN_OPTIONS=abort_on_error=1:detect_leaks=1 \
UBSAN_OPTIONS=print_stacktrace=1 \
  "$CLI" "$SRC_DIR/examples/dotprod.c" > "$RED_OUT" 2> /dev/null
if ! grep -q 'pragma omp parallel for' "$RED_OUT" ||
   ! grep -q 'reduction(+:s)' "$RED_OUT"; then
  echo "ci-sanitize: dot product lost its reduction pragma" >&2
  exit 1
fi
rm -f "$RED_OUT"
echo "ci-sanitize: reduction parallelization OK"

# Serving-layer soak: plutod under the sanitizers, ~55 mixed requests from
# plutoctl (good kernels - twice, so the second pass is all cache hits -
# plus the whole malformed corpus and ping/metrics probes), then a metrics
# scrape and a SIGTERM drain. Fails on any sanitizer report, a dropped
# request (daemon exits non-zero when accepted != completed), or a metrics
# document that disagrees with the traffic.
PLUTOD="$BUILD_DIR/tools/plutod"
PLUTOCTL="$BUILD_DIR/tools/plutoctl"
SOCK="$BUILD_DIR/ci-plutod.sock"
DLOG="$BUILD_DIR/ci-plutod.log"
rm -f "$SOCK" "$DLOG"
ASAN_OPTIONS=abort_on_error=1:detect_leaks=1 \
UBSAN_OPTIONS=print_stacktrace=1 \
  "$PLUTOD" --socket="$SOCK" --workers=4 --shards=8 --quiet \
    2> "$DLOG" &
DAEMON_PID=$!
# Wait for the socket to answer a ping.
TRIES=0
until "$PLUTOCTL" --socket="$SOCK" --ping > /dev/null 2>&1; do
  TRIES=$((TRIES + 1))
  if [ "$TRIES" -ge 50 ]; then
    echo "ci-sanitize: plutod never answered a ping" >&2
    cat "$DLOG" >&2
    kill "$DAEMON_PID" 2> /dev/null || true
    exit 1
  fi
  sleep 0.1
done

# Good traffic, 6 passes over examples/ (36 compile requests): the first
# pass is cold, the rest pure cache hits, and from pass 3 on the passes
# run concurrently to exercise the worker pool + sharded cache under
# racing clients. plutoctl output must match plutopp's byte for byte.
SERVED="$BUILD_DIR/ci-plutod-served.c"
LOCAL="$BUILD_DIR/ci-plutod-local.c"
"$CLI" "$SRC_DIR"/examples/*.c > "$LOCAL" 2> /dev/null
for PASS in cold warm; do
  "$PLUTOCTL" --socket="$SOCK" "$SRC_DIR"/examples/*.c > "$SERVED"
  if ! diff "$SERVED" "$LOCAL" > /dev/null; then
    echo "ci-sanitize: plutoctl ($PASS) output differs from plutopp" >&2
    kill "$DAEMON_PID" 2> /dev/null || true
    exit 1
  fi
done
CTL_PIDS=""
for I in 1 2 3 4; do
  "$PLUTOCTL" --socket="$SOCK" "$SRC_DIR"/examples/*.c \
    > "$SERVED.$I" &
  CTL_PIDS="$CTL_PIDS $!"
done
for PID in $CTL_PIDS; do
  # The daemon stays up as its own background job; wait only for clients.
  wait "$PID"
done
for I in 1 2 3 4; do
  if ! diff "$SERVED.$I" "$LOCAL" > /dev/null; then
    echo "ci-sanitize: concurrent plutoctl pass $I differs from plutopp" >&2
    kill "$DAEMON_PID" 2> /dev/null || true
    exit 1
  fi
  rm -f "$SERVED.$I"
done
# Bad traffic (twice - the failure path must not poison the cache): every
# malformed-corpus file must come back source-error (client exit 2)
# without hurting the daemon.
for BAD in "$SRC_DIR"/tests/corpus/*.c "$SRC_DIR"/tests/corpus/*.c; do
  STATUS=0
  "$PLUTOCTL" --socket="$SOCK" "$BAD" > /dev/null 2>&1 || STATUS=$?
  if [ "$STATUS" -ne 2 ]; then
    echo "ci-sanitize: plutod gave exit $STATUS for malformed $BAD" >&2
    kill "$DAEMON_PID" 2> /dev/null || true
    exit 1
  fi
done
# Metrics must balance: accepted == completed, and the document is the
# versioned report schema.
METRICS="$BUILD_DIR/ci-plutod-metrics.json"
"$PLUTOCTL" --socket="$SOCK" --metrics > "$METRICS"
for NEEDLE in '"schema":2' '"server"' '"cache"' '"latency_ms"'; do
  if ! grep -q "$NEEDLE" "$METRICS"; then
    echo "ci-sanitize: plutod metrics missing $NEEDLE" >&2
    kill "$DAEMON_PID" 2> /dev/null || true
    exit 1
  fi
done
ACCEPTED=$(sed -n 's/.*"requests_accepted":\([0-9]*\).*/\1/p' "$METRICS")
COMPLETED=$(sed -n 's/.*"requests_completed":\([0-9]*\).*/\1/p' "$METRICS")
if [ -z "$ACCEPTED" ] || [ "$ACCEPTED" != "$COMPLETED" ]; then
  echo "ci-sanitize: plutod dropped requests ($ACCEPTED accepted," \
       "$COMPLETED completed)" >&2
  kill "$DAEMON_PID" 2> /dev/null || true
  exit 1
fi
# Graceful drain: SIGTERM; the daemon exits 0 only when every accepted
# request was answered (and a sanitizer report would have aborted it).
kill -TERM "$DAEMON_PID"
if ! wait "$DAEMON_PID"; then
  echo "ci-sanitize: plutod drain failed" >&2
  cat "$DLOG" >&2
  exit 1
fi
rm -f "$SOCK" "$DLOG" "$SERVED" "$LOCAL" "$METRICS"
echo "ci-sanitize: plutod sanitizer soak OK"

# Fault-injection soak: every FaultInjector site armed at least once at
# process level (the robustness_test suite under ctest above already
# exercises each site's failure classification in-process; this part
# checks whole-process degraded behaviour under the sanitizers). The
# rule being checked throughout: lose the optimization, never the
# compile - and never the daemon.
FD_CACHE="$BUILD_DIR/ci-fault-cache"
FD_OUT="$BUILD_DIR/ci-fault-out.c"
FD_REF="$BUILD_DIR/ci-fault-ref.c"
rm -rf "$FD_CACHE" "$FD_OUT" "$FD_REF"

# cache.disk_write: every disk write fails -> the compile still succeeds
# (memory tier only), the counter reports it, and no torn entry lands on
# disk.
ASAN_OPTIONS=abort_on_error=1:detect_leaks=1 \
UBSAN_OPTIONS=print_stacktrace=1 \
PLUTOPP_FAULT='cache.disk_write:*' \
  "$CLI" --cache-dir="$FD_CACHE" --report=json --out="$FD_OUT" \
    "$SRC_DIR/examples/matmul.c" > "$BUILD_DIR/ci-fault-report.json" \
    2> /dev/null
if ! grep -q '"cache_write_errors": *[1-9]' "$BUILD_DIR/ci-fault-report.json"; then
  echo "ci-sanitize: cache.disk_write fault left no cache_write_errors" >&2
  exit 1
fi
if [ -n "$(find "$FD_CACHE" -name '*.c' 2> /dev/null)" ]; then
  echo "ci-sanitize: cache.disk_write fault still persisted an entry" >&2
  exit 1
fi

# cache.disk_read: prime the disk cache cleanly, then fail every disk
# read - the entry is just a miss, the compile runs cold, and the output
# stays byte-identical.
"$CLI" --cache-dir="$FD_CACHE" "$SRC_DIR/examples/matmul.c" > "$FD_REF" \
  2> /dev/null
ASAN_OPTIONS=abort_on_error=1:detect_leaks=1 \
UBSAN_OPTIONS=print_stacktrace=1 \
PLUTOPP_FAULT='cache.disk_read:*' \
  "$CLI" --cache-dir="$FD_CACHE" "$SRC_DIR/examples/matmul.c" > "$FD_OUT" \
    2> /dev/null
if ! diff "$FD_OUT" "$FD_REF" > /dev/null; then
  echo "ci-sanitize: cache.disk_read fault changed the output" >&2
  exit 1
fi

# jit.compile / bigint.alloc: armed through a full CLI compile - neither
# fires on a well-behaved kernel (the JIT is not on the plutopp path and
# matmul needs no big limbs), and the run must stay byte-identical with
# the sites armed. Their actual failure paths (retry-once, bad_alloc ->
# resource-exhausted) are pinned by tests/robustness_test.cpp.
ASAN_OPTIONS=abort_on_error=1:detect_leaks=1 \
UBSAN_OPTIONS=print_stacktrace=1 \
PLUTOPP_FAULT='jit.compile:1,bigint.alloc:1' \
  "$CLI" "$SRC_DIR/examples/matmul.c" > "$FD_OUT" 2> /dev/null
if ! diff "$FD_OUT" "$FD_REF" > /dev/null; then
  echo "ci-sanitize: armed-but-idle fault sites changed the output" >&2
  exit 1
fi
rm -rf "$FD_CACHE" "$FD_OUT" "$FD_REF" "$BUILD_DIR/ci-fault-report.json"
echo "ci-sanitize: CLI fault-injection soak OK"

# Resource-bomb corpus: pathological inputs must exit 4 (resource
# exhausted) under a deterministic work budget, promptly, instead of
# spinning the sanitizer build.
for BOMB_SPEC in deep_nest.c:200000 wide_coupled.c:20000; do
  BOMB="$SRC_DIR/tests/corpus/bombs/${BOMB_SPEC%%:*}"
  WORK="${BOMB_SPEC##*:}"
  STATUS=0
  ASAN_OPTIONS=abort_on_error=1:detect_leaks=1 \
  UBSAN_OPTIONS=print_stacktrace=1 \
    "$CLI" --max-work="$WORK" "$BOMB" > /dev/null 2>&1 || STATUS=$?
  if [ "$STATUS" -ne 4 ]; then
    echo "ci-sanitize: expected exit 4 for bomb $BOMB, got $STATUS" >&2
    exit 1
  fi
done
echo "ci-sanitize: resource-bomb budget regressions OK"

# plutoctl connection retry: a socket nobody serves must fail cleanly
# after the bounded backoff, not hang.
if "$PLUTOCTL" --socket="$BUILD_DIR/ci-no-such.sock" --retries=2 --ping \
    > /dev/null 2>&1; then
  echo "ci-sanitize: plutoctl connected to a nonexistent socket" >&2
  exit 1
fi

# Helper for the daemon soaks below: start plutod with $PLUTOD_ARGS and
# $PLUTOD_FAULT, wait for a ping, run the commands, then drain and check
# the zero-dropped-jobs invariant (plutod exits non-zero when accepted
# != completed).
start_plutod() {
  rm -f "$SOCK"
  ASAN_OPTIONS=abort_on_error=1:detect_leaks=1 \
  UBSAN_OPTIONS=print_stacktrace=1 \
  PLUTOPP_FAULT="$1" \
    "$PLUTOD" --socket="$SOCK" --quiet $2 2> "$DLOG" &
  DAEMON_PID=$!
  TRIES=0
  until "$PLUTOCTL" --socket="$SOCK" --retries=1 --ping > /dev/null 2>&1; do
    TRIES=$((TRIES + 1))
    if [ "$TRIES" -ge 100 ]; then
      echo "ci-sanitize: plutod ($2) never answered a ping" >&2
      cat "$DLOG" >&2
      kill "$DAEMON_PID" 2> /dev/null || true
      exit 1
    fi
    sleep 0.1
  done
}
drain_plutod() {
  kill -TERM "$DAEMON_PID"
  if ! wait "$DAEMON_PID"; then
    echo "ci-sanitize: plutod ($1) dropped requests on drain" >&2
    cat "$DLOG" >&2
    exit 1
  fi
}

# serve.socket_write: the first response write fails (dead-client path);
# that connection is closed, the next connection is unaffected, and the
# drain still balances.
start_plutod 'serve.socket_write:1' "--workers=2"
"$PLUTOCTL" --socket="$SOCK" "$SRC_DIR/examples/matmul.c" \
  > /dev/null 2>&1 || true
STATUS=0
"$PLUTOCTL" --socket="$SOCK" "$SRC_DIR/examples/matmul.c" \
  > /dev/null 2>&1 || STATUS=$?
if [ "$STATUS" -ne 0 ]; then
  echo "ci-sanitize: connection after socket_write fault got $STATUS" >&2
  kill "$DAEMON_PID" 2> /dev/null || true
  exit 1
fi
drain_plutod "serve.socket_write"

# sandbox.spawn: the fork fails once -> one structured internal error
# (client exit 1), full recovery on the next request.
start_plutod 'sandbox.spawn:1' "--workers=1 --isolate"
STATUS=0
"$PLUTOCTL" --socket="$SOCK" "$SRC_DIR/examples/matmul.c" \
  > /dev/null 2>&1 || STATUS=$?
if [ "$STATUS" -ne 1 ]; then
  echo "ci-sanitize: sandbox.spawn fault gave exit $STATUS, want 1" >&2
  kill "$DAEMON_PID" 2> /dev/null || true
  exit 1
fi
STATUS=0
"$PLUTOCTL" --socket="$SOCK" "$SRC_DIR/examples/matmul.c" \
  > /dev/null 2>&1 || STATUS=$?
if [ "$STATUS" -ne 0 ]; then
  echo "ci-sanitize: compile after spawn fault gave exit $STATUS" >&2
  kill "$DAEMON_PID" 2> /dev/null || true
  exit 1
fi
drain_plutod "sandbox.spawn"

# sandbox.abort: the child crashes compiling the first request (client
# sees a structured internal error, exit 1), and the repeat of the same
# input is refused by the circuit breaker without spending another
# child. Zero dropped jobs throughout.
start_plutod 'sandbox.abort:1' "--workers=1 --isolate --breaker-ttl-ms=60000"
for PASS in crash breaker; do
  STATUS=0
  "$PLUTOCTL" --socket="$SOCK" "$SRC_DIR/examples/matmul.c" \
    > /dev/null 2>&1 || STATUS=$?
  if [ "$STATUS" -ne 1 ]; then
    echo "ci-sanitize: sandbox.abort $PASS pass gave exit $STATUS" >&2
    kill "$DAEMON_PID" 2> /dev/null || true
    exit 1
  fi
done
"$PLUTOCTL" --socket="$SOCK" --metrics > "$METRICS"
if ! grep -q '"breaker_hits": *[1-9]' "$METRICS"; then
  echo "ci-sanitize: no breaker_hits after a poisoned repeat" >&2
  kill "$DAEMON_PID" 2> /dev/null || true
  exit 1
fi
drain_plutod "sandbox.abort"

# sandbox.hang: the child sleeps forever; the parent watchdog kills it
# at the wall deadline and answers resource-exhausted (client exit 4).
start_plutod 'sandbox.hang:1' "--workers=1 --isolate --compile-timeout-ms=2000"
STATUS=0
"$PLUTOCTL" --socket="$SOCK" "$SRC_DIR/examples/matmul.c" \
  > /dev/null 2>&1 || STATUS=$?
if [ "$STATUS" -ne 4 ]; then
  echo "ci-sanitize: sandbox.hang gave exit $STATUS, want 4" >&2
  kill "$DAEMON_PID" 2> /dev/null || true
  exit 1
fi
drain_plutod "sandbox.hang"

# Isolate soak without faults: served output is byte-identical to the
# local CLI, a kill -9'd sandbox child is replaced without losing a
# single job, per-request budgets answer exit 4 over the wire, and the
# metrics balance. One worker, so the killed child's worker is
# guaranteed to serve the follow-up traffic (and hence to respawn).
start_plutod '' "--workers=1 --isolate"
"$CLI" "$SRC_DIR"/examples/*.c > "$LOCAL" 2> /dev/null
"$PLUTOCTL" --socket="$SOCK" "$SRC_DIR"/examples/*.c > "$SERVED"
if ! diff "$SERVED" "$LOCAL" > /dev/null; then
  echo "ci-sanitize: isolate-mode output differs from plutopp" >&2
  kill "$DAEMON_PID" 2> /dev/null || true
  exit 1
fi
# Murder one warm sandbox child out from under the daemon.
CHILD=$(pgrep -P "$DAEMON_PID" | head -n 1 || true)
if [ -z "$CHILD" ]; then
  echo "ci-sanitize: isolate daemon has no sandbox children to kill" >&2
  kill "$DAEMON_PID" 2> /dev/null || true
  exit 1
fi
kill -9 "$CHILD"
sleep 0.2
# Post-kill traffic must be cold (a warm key is a parent-cache hit and
# never reaches a sandbox): a different tile size is a different options
# fingerprint, hence all-new cache keys for every worker.
"$CLI" --tile-size=100 "$SRC_DIR"/examples/*.c > "$LOCAL" 2> /dev/null
"$PLUTOCTL" --socket="$SOCK" --tile-size=100 "$SRC_DIR"/examples/*.c \
  > "$SERVED"
if ! diff "$SERVED" "$LOCAL" > /dev/null; then
  echo "ci-sanitize: isolate output differs after killing a child" >&2
  kill "$DAEMON_PID" 2> /dev/null || true
  exit 1
fi
STATUS=0
"$PLUTOCTL" --socket="$SOCK" --max-work=200000 \
  "$SRC_DIR/tests/corpus/bombs/deep_nest.c" > /dev/null 2>&1 || STATUS=$?
if [ "$STATUS" -ne 4 ]; then
  echo "ci-sanitize: sandboxed bomb gave exit $STATUS, want 4" >&2
  kill "$DAEMON_PID" 2> /dev/null || true
  exit 1
fi
"$PLUTOCTL" --socket="$SOCK" --metrics > "$METRICS"
ACCEPTED=$(sed -n 's/.*"requests_accepted":\([0-9]*\).*/\1/p' "$METRICS")
COMPLETED=$(sed -n 's/.*"requests_completed":\([0-9]*\).*/\1/p' "$METRICS")
if [ -z "$ACCEPTED" ] || [ "$ACCEPTED" != "$COMPLETED" ]; then
  echo "ci-sanitize: isolate plutod dropped requests ($ACCEPTED accepted," \
       "$COMPLETED completed)" >&2
  kill "$DAEMON_PID" 2> /dev/null || true
  exit 1
fi
if ! grep -q '"sandbox_restarts": *[1-9]' "$METRICS"; then
  echo "ci-sanitize: no sandbox_restarts after kill -9" >&2
  kill "$DAEMON_PID" 2> /dev/null || true
  exit 1
fi
drain_plutod "isolate"
rm -f "$SOCK" "$DLOG" "$SERVED" "$LOCAL" "$METRICS"
echo "ci-sanitize: plutod fault-isolation soak OK"

# Autotuner smoke-run: a tiny measured search on matmul and seidel2d under
# the sanitizers. The trace must carry the versioned schema with fewer
# variants measured than enumerated, and the winner's emitted C must be a
# valid OpenMP translation unit. n/reps are small: this checks plumbing,
# not performance.
TUNE_SPEC='tile=0,16;l2=0;wave=0,1;n=16;reps=2;warmup=1;max-measure=3'
TUNE_TRACE="$BUILD_DIR/ci-tune-trace.json"
TUNE_OUT="$BUILD_DIR/ci-tune-winner.c"
for KERNEL in matmul.c seidel2d.c; do
  ASAN_OPTIONS=abort_on_error=1:detect_leaks=1 \
  UBSAN_OPTIONS=print_stacktrace=1 \
    "$CLI" --tune="$TUNE_SPEC" --tune-trace="$TUNE_TRACE" \
      "$SRC_DIR/examples/$KERNEL" > "$TUNE_OUT" 2> /dev/null
  if ! grep -q '"tune_schema": 1' "$TUNE_TRACE"; then
    echo "ci-sanitize: tune trace for $KERNEL lacks the schema marker" >&2
    exit 1
  fi
  ENUMERATED=$(sed -n 's/.*"enumerated": \([0-9]*\).*/\1/p' "$TUNE_TRACE")
  MEASURED=$(sed -n 's/.*"measured": \([0-9]*\).*/\1/p' "$TUNE_TRACE" | head -n 1)
  if [ -z "$ENUMERATED" ] || [ -z "$MEASURED" ] ||
     [ "$MEASURED" -ge "$ENUMERATED" ]; then
    echo "ci-sanitize: tune on $KERNEL measured $MEASURED of $ENUMERATED" \
         "- pruning did not happen" >&2
    exit 1
  fi
  if ! "${CC:-cc}" -fsyntax-only -fopenmp "$TUNE_OUT"; then
    echo "ci-sanitize: tune winner for $KERNEL does not compile" >&2
    exit 1
  fi
done

# Degraded mode: every JIT compile fails. The tuner must skip the broken
# variants (they land in "errors", never crash the search) and still
# return a compiling winner from the statically-ranked survivors.
ASAN_OPTIONS=abort_on_error=1:detect_leaks=1 \
UBSAN_OPTIONS=print_stacktrace=1 \
PLUTOPP_FAULT='jit.compile:*' \
  "$CLI" --tune="$TUNE_SPEC" --tune-trace="$TUNE_TRACE" \
    "$SRC_DIR/examples/matmul.c" > "$TUNE_OUT" 2> /dev/null
if ! grep -q '"tune_schema": 1' "$TUNE_TRACE" ||
   ! grep -q '"errors": [1-9]' "$TUNE_TRACE"; then
  echo "ci-sanitize: jit.compile faults did not degrade to skipped" \
       "variants" >&2
  exit 1
fi
if ! "${CC:-cc}" -fsyntax-only -fopenmp "$TUNE_OUT"; then
  echo "ci-sanitize: degraded tune winner does not compile" >&2
  exit 1
fi
rm -f "$TUNE_TRACE" "$TUNE_OUT"
echo "ci-sanitize: autotuner smoke-run OK"
