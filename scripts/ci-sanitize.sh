#!/bin/sh
# CI job: build the whole tree with AddressSanitizer + UBSan and run the
# complete test suite under it. Any sanitizer report aborts the run
# (-fno-sanitize-recover=all) and fails the job.
#
# Usage: scripts/ci-sanitize.sh [build-dir]
set -eu

BUILD_DIR=${1:-build-sanitize}
SRC_DIR=$(dirname "$0")/..

cmake -B "$BUILD_DIR" -S "$SRC_DIR" -DPLUTOPP_SANITIZE=ON
cmake --build "$BUILD_DIR" -j "$(nproc)"

# abort_on_error makes ASan failures hard test failures under ctest;
# detect_leaks covers the dlopen/JIT paths too.
ASAN_OPTIONS=abort_on_error=1:detect_leaks=1 \
UBSAN_OPTIONS=print_stacktrace=1 \
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"
